#include "taxonomy/classification.h"

#include "util/error.h"
#include "util/strings.h"
#include "util/table.h"

namespace iotaxo::taxonomy {

const FeatureValue& FrameworkClassification::value(FeatureId id) const {
  const auto it = values.find(id);
  if (it == values.end()) {
    throw ConfigError(strprintf("classification of %s lacks feature '%s'",
                                framework_name.c_str(), feature_name(id)));
  }
  return it->second;
}

void FrameworkClassification::set(FeatureId id, FeatureValue v) {
  values[id] = std::move(v);
}

void FrameworkClassification::note(FeatureId id, std::string text) {
  notes[id] = std::move(text);
}

std::string render_table1_template() {
  TextTable table({"Feature", "<I/O Tracing Framework Name>"});
  table.set_title(
      "Table 1. An I/O Tracing Framework summary table. The classification\n"
      "features and overhead measurements of any I/O Tracing Framework can\n"
      "be summarized for quick reference and comparison to other Frameworks.");
  for (const FeatureId id : all_features()) {
    table.add_row({feature_name(id), feature_placeholder(id)});
  }
  return table.render();
}

std::string render_summary_table(const FrameworkClassification& c) {
  TextTable table({"Feature", c.framework_name});
  for (const FeatureId id : all_features()) {
    table.add_row({feature_name(id), c.value(id).display});
  }
  std::string out = table.render();
  int footnote = 1;
  for (const FeatureId id : all_features()) {
    const auto it = c.notes.find(id);
    if (it != c.notes.end()) {
      out += strprintf("%d. [%s] %s\n", footnote++, feature_name(id),
                       it->second.c_str());
    }
  }
  return out;
}

std::string render_comparison_table(
    const std::vector<FrameworkClassification>& classifications) {
  std::vector<std::string> headers{"Feature"};
  for (const FrameworkClassification& c : classifications) {
    headers.push_back(c.framework_name);
  }
  TextTable table(std::move(headers));
  table.set_title("Table 2. Classification summary table for various Traces");

  struct Footnote {
    std::string framework;
    FeatureId feature;
    std::string text;
  };
  std::vector<Footnote> footnotes;

  for (const FeatureId id : all_features()) {
    std::vector<std::string> row{feature_name(id)};
    for (const FrameworkClassification& c : classifications) {
      std::string cell = c.value(id).display;
      const auto it = c.notes.find(id);
      if (it != c.notes.end()) {
        footnotes.push_back(Footnote{c.framework_name, id, it->second});
        cell += strprintf(" [%zu]", footnotes.size());
      }
      row.push_back(std::move(cell));
    }
    table.add_row(std::move(row));
  }
  std::string out = table.render();
  for (std::size_t i = 0; i < footnotes.size(); ++i) {
    out += strprintf("[%zu] %s, %s: %s\n", i + 1,
                     footnotes[i].framework.c_str(),
                     feature_name(footnotes[i].feature),
                     footnotes[i].text.c_str());
  }
  return out;
}

}  // namespace iotaxo::taxonomy
