#include "mpi/program.h"

#include <map>
#include <set>

#include "util/error.h"
#include "util/strings.h"

namespace iotaxo::mpi {

const char* to_string(OpType type) noexcept {
  switch (type) {
    case OpType::kCompute:
      return "compute";
    case OpType::kOpen:
      return "open";
    case OpType::kClose:
      return "close";
    case OpType::kWriteBlocks:
      return "write_blocks";
    case OpType::kReadBlocks:
      return "read_blocks";
    case OpType::kFsync:
      return "fsync";
    case OpType::kStat:
      return "stat";
    case OpType::kStatfs:
      return "statfs";
    case OpType::kMkdir:
      return "mkdir";
    case OpType::kUnlink:
      return "unlink";
    case OpType::kReaddir:
      return "readdir";
    case OpType::kMmap:
      return "mmap";
    case OpType::kMmapWrite:
      return "mmap_write";
    case OpType::kMmapRead:
      return "mmap_read";
    case OpType::kBarrier:
      return "barrier";
    case OpType::kSend:
      return "send";
    case OpType::kRecv:
      return "recv";
    case OpType::kClockProbe:
      return "clock_probe";
    case OpType::kAnnotate:
      return "annotate";
  }
  return "?";
}

ScriptBuilder& ScriptBuilder::compute(SimTime duration) {
  Op op;
  op.type = OpType::kCompute;
  op.duration = duration;
  ops_.push_back(std::move(op));
  return *this;
}

ScriptBuilder& ScriptBuilder::open(int slot, std::string path,
                                   fs::OpenMode mode, fs::AccessHint hint,
                                   Api api) {
  Op op;
  op.type = OpType::kOpen;
  op.slot = slot;
  op.path = std::move(path);
  op.mode = mode;
  op.hint = hint;
  op.api = api;
  ops_.push_back(std::move(op));
  return *this;
}

ScriptBuilder& ScriptBuilder::close(int slot, Api api) {
  Op op;
  op.type = OpType::kClose;
  op.slot = slot;
  op.api = api;
  ops_.push_back(std::move(op));
  return *this;
}

ScriptBuilder& ScriptBuilder::write_blocks(int slot, Bytes block,
                                           long long count, Bytes start_offset,
                                           Bytes stride, Api api) {
  Op op;
  op.type = OpType::kWriteBlocks;
  op.slot = slot;
  op.block = block;
  op.count = count;
  op.start_offset = start_offset;
  op.stride = stride;
  op.api = api;
  op.hint = stride > 0 && stride != block ? fs::AccessHint::kStrided
                                          : fs::AccessHint::kSequential;
  ops_.push_back(std::move(op));
  return *this;
}

ScriptBuilder& ScriptBuilder::read_blocks(int slot, Bytes block,
                                          long long count, Bytes start_offset,
                                          Bytes stride, Api api) {
  Op op;
  op.type = OpType::kReadBlocks;
  op.slot = slot;
  op.block = block;
  op.count = count;
  op.start_offset = start_offset;
  op.stride = stride;
  op.api = api;
  ops_.push_back(std::move(op));
  return *this;
}

ScriptBuilder& ScriptBuilder::fsync(int slot, Api api) {
  Op op;
  op.type = OpType::kFsync;
  op.slot = slot;
  op.api = api;
  ops_.push_back(std::move(op));
  return *this;
}

ScriptBuilder& ScriptBuilder::stat(std::string path, Api api) {
  Op op;
  op.type = OpType::kStat;
  op.path = std::move(path);
  op.api = api;
  ops_.push_back(std::move(op));
  return *this;
}

ScriptBuilder& ScriptBuilder::statfs(Api api) {
  Op op;
  op.type = OpType::kStatfs;
  op.api = api;
  ops_.push_back(std::move(op));
  return *this;
}

ScriptBuilder& ScriptBuilder::mkdir(std::string path, Api api) {
  Op op;
  op.type = OpType::kMkdir;
  op.path = std::move(path);
  op.api = api;
  ops_.push_back(std::move(op));
  return *this;
}

ScriptBuilder& ScriptBuilder::unlink(std::string path, Api api) {
  Op op;
  op.type = OpType::kUnlink;
  op.path = std::move(path);
  op.api = api;
  ops_.push_back(std::move(op));
  return *this;
}

ScriptBuilder& ScriptBuilder::readdir(std::string path, Api api) {
  Op op;
  op.type = OpType::kReaddir;
  op.path = std::move(path);
  op.api = api;
  ops_.push_back(std::move(op));
  return *this;
}

ScriptBuilder& ScriptBuilder::mmap(int slot) {
  Op op;
  op.type = OpType::kMmap;
  op.slot = slot;
  op.api = Api::kPosix;
  ops_.push_back(std::move(op));
  return *this;
}

ScriptBuilder& ScriptBuilder::mmap_write(int slot, Bytes block,
                                         long long count, Bytes start_offset) {
  Op op;
  op.type = OpType::kMmapWrite;
  op.slot = slot;
  op.block = block;
  op.count = count;
  op.start_offset = start_offset;
  op.api = Api::kPosix;
  ops_.push_back(std::move(op));
  return *this;
}

ScriptBuilder& ScriptBuilder::mmap_read(int slot, Bytes block, long long count,
                                        Bytes start_offset) {
  Op op;
  op.type = OpType::kMmapRead;
  op.slot = slot;
  op.block = block;
  op.count = count;
  op.start_offset = start_offset;
  op.api = Api::kPosix;
  ops_.push_back(std::move(op));
  return *this;
}

ScriptBuilder& ScriptBuilder::barrier(std::string label) {
  Op op;
  op.type = OpType::kBarrier;
  op.label = std::move(label);
  ops_.push_back(std::move(op));
  return *this;
}

ScriptBuilder& ScriptBuilder::send(int peer, Bytes bytes, int tag) {
  Op op;
  op.type = OpType::kSend;
  op.peer = peer;
  op.msg_bytes = bytes;
  op.tag = tag;
  ops_.push_back(std::move(op));
  return *this;
}

ScriptBuilder& ScriptBuilder::recv(int peer, int tag) {
  Op op;
  op.type = OpType::kRecv;
  op.peer = peer;
  op.tag = tag;
  ops_.push_back(std::move(op));
  return *this;
}

ScriptBuilder& ScriptBuilder::clock_probe(std::string label) {
  Op op;
  op.type = OpType::kClockProbe;
  op.label = std::move(label);
  ops_.push_back(std::move(op));
  return *this;
}

ScriptBuilder& ScriptBuilder::annotate(std::string text) {
  Op op;
  op.type = OpType::kAnnotate;
  op.label = std::move(text);
  ops_.push_back(std::move(op));
  return *this;
}

void validate_job(const std::vector<Program>& per_rank) {
  if (per_rank.empty()) {
    throw ConfigError("job has no ranks");
  }
  // Matching barrier counts.
  std::size_t barriers0 = 0;
  for (const Op& op : per_rank[0]) {
    if (op.type == OpType::kBarrier) {
      ++barriers0;
    }
  }
  for (std::size_t r = 1; r < per_rank.size(); ++r) {
    std::size_t b = 0;
    for (const Op& op : per_rank[r]) {
      if (op.type == OpType::kBarrier) {
        ++b;
      }
    }
    if (b != barriers0) {
      throw ConfigError(
          strprintf("rank %zu has %zu barriers, rank 0 has %zu", r, b,
                    barriers0));
    }
  }
  // Send/recv pairing by (src,dst,tag) counts.
  std::map<std::tuple<int, int, int>, long long> balance;
  for (std::size_t r = 0; r < per_rank.size(); ++r) {
    for (const Op& op : per_rank[r]) {
      if (op.type == OpType::kSend) {
        ++balance[{static_cast<int>(r), op.peer, op.tag}];
      } else if (op.type == OpType::kRecv) {
        --balance[{op.peer, static_cast<int>(r), op.tag}];
      }
    }
  }
  for (const auto& [key, v] : balance) {
    if (v != 0) {
      throw ConfigError("unbalanced send/recv in job");
    }
  }
  // Slots must be opened before use and closed at most once per open.
  for (std::size_t r = 0; r < per_rank.size(); ++r) {
    std::set<int> open_slots;
    for (const Op& op : per_rank[r]) {
      switch (op.type) {
        case OpType::kOpen:
          open_slots.insert(op.slot);
          break;
        case OpType::kClose:
          if (open_slots.erase(op.slot) == 0) {
            throw ConfigError(
                strprintf("rank %zu closes slot %d before opening it", r,
                          op.slot));
          }
          break;
        case OpType::kWriteBlocks:
        case OpType::kReadBlocks:
        case OpType::kFsync:
        case OpType::kMmap:
        case OpType::kMmapWrite:
        case OpType::kMmapRead:
          if (!open_slots.contains(op.slot)) {
            throw ConfigError(strprintf(
                "rank %zu uses slot %d before opening it", r, op.slot));
          }
          break;
        default:
          break;
      }
    }
  }
}

}  // namespace iotaxo::mpi
