// Rank programs: the op-level representation of a (simulated) parallel
// application. Workload generators build one Program per rank; the Runtime
// executes them in virtual time, emitting trace events to whatever
// interposition mechanisms are attached.
//
// This design (deterministic op scripts instead of live threads) keeps every
// experiment in the paper bit-reproducible: identical seeds and parameters
// give identical traces, timings and overhead percentages.
#pragma once

#include <string>
#include <vector>

#include "fs/vfs.h"
#include "util/types.h"

namespace iotaxo::mpi {

/// Which API family the application used for an operation. MPI-IO calls
/// map to different library-call names (and open-time syscall sequences)
/// than plain POSIX calls, which matters to library-level tracers.
enum class Api { kPosix, kMpiIo };

enum class OpType {
  kCompute,     // advance local clock (CPU work)
  kOpen,        // open/create file into a slot
  kClose,       // close slot
  kWriteBlocks, // `count` writes of `block` bytes (strided or contiguous)
  kReadBlocks,  // `count` reads
  kFsync,
  kStat,
  kStatfs,
  kMkdir,
  kUnlink,
  kReaddir,
  kMmap,        // map the slot's file
  kMmapWrite,   // memory-mapped store (invisible to syscall tracers)
  kMmapRead,
  kBarrier,     // global barrier (labels feed bandwidth windows)
  kSend,        // point-to-point message
  kRecv,
  kClockProbe,  // record node-local time (skew/drift accounting job)
  kAnnotate,    // annotation record in the trace
};

[[nodiscard]] const char* to_string(OpType type) noexcept;

struct Op {
  OpType type{};
  Api api = Api::kMpiIo;

  std::string path;  // open/stat/mkdir/unlink/readdir
  int slot = 0;      // program-local file handle index

  Bytes block = 0;        // block size for *Blocks / Mmap* ops
  long long count = 1;    // number of blocks
  Bytes start_offset = -1;  // -1: continue from the slot cursor
  Bytes stride = 0;         // 0: contiguous; else distance between blocks

  SimTime duration = 0;  // kCompute

  int peer = -1;       // kSend/kRecv
  int tag = 0;
  Bytes msg_bytes = 0;

  fs::OpenMode mode{};
  fs::AccessHint hint = fs::AccessHint::kSequential;

  std::string label;  // barrier label / probe label / annotation text
};

using Program = std::vector<Op>;

/// Fluent builder so examples and workloads read like application code.
class ScriptBuilder {
 public:
  ScriptBuilder& compute(SimTime duration);
  ScriptBuilder& open(int slot, std::string path, fs::OpenMode mode,
                      fs::AccessHint hint = fs::AccessHint::kSequential,
                      Api api = Api::kMpiIo);
  ScriptBuilder& close(int slot, Api api = Api::kMpiIo);
  ScriptBuilder& write_blocks(int slot, Bytes block, long long count,
                              Bytes start_offset = -1, Bytes stride = 0,
                              Api api = Api::kMpiIo);
  ScriptBuilder& read_blocks(int slot, Bytes block, long long count,
                             Bytes start_offset = -1, Bytes stride = 0,
                             Api api = Api::kMpiIo);
  ScriptBuilder& fsync(int slot, Api api = Api::kPosix);
  ScriptBuilder& stat(std::string path, Api api = Api::kPosix);
  ScriptBuilder& statfs(Api api = Api::kPosix);
  ScriptBuilder& mkdir(std::string path, Api api = Api::kPosix);
  ScriptBuilder& unlink(std::string path, Api api = Api::kPosix);
  ScriptBuilder& readdir(std::string path, Api api = Api::kPosix);
  ScriptBuilder& mmap(int slot);
  ScriptBuilder& mmap_write(int slot, Bytes block, long long count,
                            Bytes start_offset = 0);
  ScriptBuilder& mmap_read(int slot, Bytes block, long long count,
                           Bytes start_offset = 0);
  ScriptBuilder& barrier(std::string label = {});
  ScriptBuilder& send(int peer, Bytes bytes, int tag = 0);
  ScriptBuilder& recv(int peer, int tag = 0);
  ScriptBuilder& clock_probe(std::string label);
  ScriptBuilder& annotate(std::string text);

  [[nodiscard]] Program build() && { return std::move(ops_); }
  [[nodiscard]] const Program& ops() const noexcept { return ops_; }

 private:
  Program ops_;
};

/// Static sanity checks on a job (matching barrier counts across ranks,
/// send/recv pairing, slots opened before use). Throws ConfigError.
void validate_job(const std::vector<Program>& per_rank);

/// A complete parallel application: one program per rank plus the command
/// line it would have been launched with (annotations and trace metadata
/// quote it, Figure 1 style).
struct Job {
  std::vector<Program> programs;
  std::string cmdline = "/app.exe";

  [[nodiscard]] int nranks() const noexcept {
    return static_cast<int>(programs.size());
  }
};

}  // namespace iotaxo::mpi
