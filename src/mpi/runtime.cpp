#include "mpi/runtime.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"
#include "util/strings.h"

namespace iotaxo::mpi {

using trace::EventClass;
using trace::TraceEvent;

Runtime::Runtime(const sim::Cluster& cluster, RunOptions options)
    : cluster_(cluster), options_(std::move(options)) {
  if (!options_.vfs) {
    throw ConfigError("Runtime needs a file system");
  }
  if (options_.procs_per_node <= 0) {
    throw ConfigError("procs_per_node must be positive");
  }
}

fs::OpCtx Runtime::ctx_for(int rank, fs::AccessHint hint) const {
  fs::OpCtx ctx;
  ctx.rank = rank;
  ctx.node_id = ranks_[static_cast<std::size_t>(rank)].node;
  ctx.uid = options_.uid;
  ctx.gid = options_.gid;
  ctx.hint = hint;
  return ctx;
}

Runtime::SlotState& Runtime::slot(int rank, int slot_index) {
  auto& slots = ranks_[static_cast<std::size_t>(rank)].slots;
  const auto it = slots.find(slot_index);
  if (it == slots.end()) {
    throw IoError(strprintf("rank %d: slot %d not open", rank, slot_index));
  }
  return it->second;
}

SimTime Runtime::emit(int rank, TraceEvent ev, SimTime start, int amp_fd) {
  RankState& rs = ranks_[static_cast<std::size_t>(rank)];
  ev.rank = rank;
  ev.node = rs.node;
  ev.pid = rs.pid;
  ev.host = cluster_.node(rs.node).hostname;
  ev.local_start = cluster_.local_time(rs.node, start);
  ev.uid = options_.uid;
  ev.gid = options_.gid;
  ++result_.events_emitted;

  SimTime extra = 0;
  for (const auto& obs : options_.observers) {
    extra += obs->on_event(ev);
  }
  if (options_.throttler && ev.is_io_call()) {
    extra += options_.throttler->delay(ev);
  }
  if (extra > 0 && amp_fd >= 0) {
    const double amp = options_.vfs->stall_amplification(amp_fd);
    extra = static_cast<SimTime>(static_cast<double>(extra) * amp);
  }
  // Capture work (ptrace stops, record writes) executes on the same node
  // as the traced process, so it scales with that node's speed too.
  const double speed = cluster_.node(rs.node).io_speed_factor;
  return static_cast<SimTime>(static_cast<double>(extra) / speed);
}

void Runtime::exec_open(int rank, const Op& op) {
  RankState& rs = ranks_[static_cast<std::size_t>(rank)];
  const SimTime t0 = rs.now;
  fs::OpCtx ctx = ctx_for(rank, op.hint);
  ctx.now = t0;

  SimTime pre_cost = 0;
  SimTime statfs_cost = 0;
  SimTime fcntl_cost = 0;
  if (op.api == Api::kMpiIo) {
    // MPI_File_open interrogates the file system first (Figure 1 shows
    // SYS_statfs64 + SYS_open + SYS_fcntl64 under MPI_File_open).
    statfs_cost = options_.vfs->statfs(ctx).cost;
    fcntl_cost = 3'000;
    pre_cost = statfs_cost + fcntl_cost;
  }
  const fs::VfsResult r = options_.vfs->open(op.path, op.mode, ctx);
  const int fd = static_cast<int>(r.value);
  rs.slots[op.slot] = SlotState{fd, 0};

  const SimTime lib_dur = pre_cost + r.cost + kLibWrapperCost;
  SimTime extra = 0;
  if (op.api == Api::kMpiIo) {
    TraceEvent lib = trace::make_libcall(
        "MPI_File_open",
        {"MPI_COMM_WORLD", op.path,
         op.mode.write ? "MPI_MODE_CREATE|MPI_MODE_WRONLY" : "MPI_MODE_RDONLY"},
        fd);
    lib.duration = lib_dur;
    lib.path = op.path;
    lib.fd = fd;
    extra += emit(rank, std::move(lib), t0, fd);

    TraceEvent sys_statfs =
        trace::make_syscall("SYS_statfs64", {op.path, "84"}, 0);
    sys_statfs.duration = statfs_cost;
    sys_statfs.path = op.path;
    extra += emit(rank, std::move(sys_statfs), t0 + kLibWrapperCost, fd);

    TraceEvent sys_open = trace::make_syscall(
        "SYS_open", {op.path, op.mode.write ? "577" : "0", "0666"}, fd);
    sys_open.duration = r.cost;
    sys_open.path = op.path;
    sys_open.fd = fd;
    extra += emit(rank, std::move(sys_open),
                  t0 + kLibWrapperCost + statfs_cost, fd);

    TraceEvent sys_fcntl = trace::make_syscall(
        "SYS_fcntl64", {strprintf("%d", fd), "1", "0"}, 0);
    sys_fcntl.duration = fcntl_cost;
    sys_fcntl.fd = fd;
    extra += emit(rank, std::move(sys_fcntl),
                  t0 + kLibWrapperCost + statfs_cost + r.cost, fd);
  } else {
    TraceEvent lib = trace::make_libcall(
        "open", {op.path, op.mode.write ? "577" : "0", "0666"}, fd);
    lib.duration = lib_dur;
    lib.path = op.path;
    lib.fd = fd;
    extra += emit(rank, std::move(lib), t0, fd);

    TraceEvent sys = trace::make_syscall(
        "SYS_open", {op.path, op.mode.write ? "577" : "0", "0666"}, fd);
    sys.duration = r.cost;
    sys.path = op.path;
    sys.fd = fd;
    extra += emit(rank, std::move(sys), t0 + kLibWrapperCost, fd);
  }
  rs.now = t0 + lib_dur + extra;
}

void Runtime::exec_close(int rank, const Op& op) {
  RankState& rs = ranks_[static_cast<std::size_t>(rank)];
  const SimTime t0 = rs.now;
  SlotState& ss = slot(rank, op.slot);
  const int fd = ss.fd;
  fs::OpCtx close_ctx = ctx_for(rank, op.hint);
  close_ctx.now = t0;
  const fs::VfsResult r = options_.vfs->close(fd, close_ctx);
  rs.slots.erase(op.slot);

  const SimTime lib_dur = r.cost + kLibWrapperCost;
  SimTime extra = 0;
  const char* lib_name = op.api == Api::kMpiIo ? "MPI_File_close" : "close";
  TraceEvent lib =
      trace::make_libcall(lib_name, {strprintf("%d", fd)}, 0);
  lib.duration = lib_dur;
  lib.fd = fd;
  extra += emit(rank, std::move(lib), t0, -1);

  TraceEvent sys = trace::make_syscall("SYS_close", {strprintf("%d", fd)}, 0);
  sys.duration = r.cost;
  sys.fd = fd;
  extra += emit(rank, std::move(sys), t0 + kLibWrapperCost, -1);

  rs.now = t0 + lib_dur + extra;
}

void Runtime::exec_io_blocks(int rank, const Op& op, bool is_write) {
  RankState& rs = ranks_[static_cast<std::size_t>(rank)];
  SlotState& ss = slot(rank, op.slot);
  const int fd = ss.fd;
  fs::OpCtx ctx = ctx_for(rank, op.hint);
  const double speed = cluster_.node(rs.node).io_speed_factor;
  const Bytes stride = op.stride == 0 ? op.block : op.stride;
  Bytes offset = op.start_offset >= 0 ? op.start_offset : ss.cursor;

  const char* lib_name = op.api == Api::kMpiIo
                             ? (is_write ? "MPI_File_write_at" : "MPI_File_read_at")
                             : (is_write ? "write" : "read");
  const char* sys_name = is_write ? "SYS_write" : "SYS_read";

  for (long long i = 0; i < op.count; ++i) {
    const SimTime t0 = rs.now;
    ctx.now = t0;
    fs::VfsResult r;
    if (is_write) {
      r = options_.vfs->write(fd, offset, op.block, ctx, nullptr);
      result_.bytes_written += r.value;
    } else {
      r = options_.vfs->read(fd, offset, op.block, ctx, nullptr);
      result_.bytes_read += r.value;
    }
    const SimTime io_cost =
        static_cast<SimTime>(static_cast<double>(r.cost) / speed);
    const SimTime lib_dur = kLseekCost + io_cost + kLibWrapperCost;
    result_.total_io_time += lib_dur;

    SimTime extra = 0;
    {
      TraceEvent lib = trace::make_libcall(
          lib_name,
          {strprintf("%d", fd), strprintf("%lld", static_cast<long long>(offset)),
           strprintf("%lld", static_cast<long long>(op.block))},
          static_cast<long long>(r.value));
      lib.duration = lib_dur;
      lib.fd = fd;
      lib.bytes = r.value;
      lib.offset = offset;
      extra += emit(rank, std::move(lib), t0, fd);

      TraceEvent sys_seek = trace::make_syscall(
          "SYS_lseek",
          {strprintf("%d", fd), strprintf("%lld", static_cast<long long>(offset)),
           "0"},
          static_cast<long long>(offset));
      sys_seek.duration = kLseekCost;
      sys_seek.fd = fd;
      sys_seek.offset = offset;
      extra += emit(rank, std::move(sys_seek), t0 + kLibWrapperCost, fd);

      TraceEvent sys_io = trace::make_syscall(
          sys_name,
          {strprintf("%d", fd), strprintf("%lld", static_cast<long long>(op.block)),
           strprintf("%lld", static_cast<long long>(offset))},
          static_cast<long long>(r.value));
      sys_io.duration = io_cost;
      sys_io.fd = fd;
      sys_io.bytes = r.value;
      sys_io.offset = offset;
      extra += emit(rank, std::move(sys_io), t0 + kLibWrapperCost + kLseekCost,
                    fd);
    }
    rs.now = t0 + lib_dur + extra;
    offset += stride;
    ss.cursor = offset;
  }
}

void Runtime::exec_mmap_io(int rank, const Op& op, bool is_write) {
  RankState& rs = ranks_[static_cast<std::size_t>(rank)];
  SlotState& ss = slot(rank, op.slot);
  fs::OpCtx ctx = ctx_for(rank, op.hint);
  const double speed = cluster_.node(rs.node).io_speed_factor;
  Bytes offset = op.start_offset >= 0 ? op.start_offset : ss.cursor;
  for (long long i = 0; i < op.count; ++i) {
    ctx.now = rs.now;
    fs::VfsResult r;
    if (is_write) {
      r = options_.vfs->mmap_write(ss.fd, offset, op.block, ctx);
      result_.bytes_written += op.block;
    } else {
      r = options_.vfs->mmap_read(ss.fd, offset, op.block, ctx);
      result_.bytes_read += r.value;
    }
    // Memory-mapped I/O emits no syscall/library events: this is precisely
    // the traffic strace/ltrace-based tracers cannot see (§4.1.1).
    const SimTime cost =
        static_cast<SimTime>(static_cast<double>(r.cost) / speed);
    result_.total_io_time += cost;
    rs.now += cost;
    offset += op.block;
    ss.cursor = offset;
  }
}

void Runtime::exec_simple_path_op(int rank, const Op& op) {
  RankState& rs = ranks_[static_cast<std::size_t>(rank)];
  const SimTime t0 = rs.now;
  fs::OpCtx ctx = ctx_for(rank, op.hint);
  ctx.now = t0;

  fs::VfsResult r;
  const char* sys_name = nullptr;
  const char* lib_name = nullptr;
  std::vector<std::string> args;
  int amp_fd = -1;
  switch (op.type) {
    case OpType::kFsync: {
      const int fd = slot(rank, op.slot).fd;
      r = options_.vfs->fsync(fd, ctx);
      sys_name = "SYS_fsync";
      lib_name = "fsync";
      args = {strprintf("%d", fd)};
      amp_fd = fd;
      break;
    }
    case OpType::kStat:
      r = options_.vfs->stat(op.path, ctx);
      sys_name = "SYS_stat";
      lib_name = "stat";
      args = {op.path};
      break;
    case OpType::kStatfs:
      r = options_.vfs->statfs(ctx);
      sys_name = "SYS_statfs64";
      lib_name = "statfs";
      args = {"/", "84"};
      break;
    case OpType::kMkdir:
      r = options_.vfs->mkdir(op.path, ctx);
      sys_name = "SYS_mkdir";
      lib_name = "mkdir";
      args = {op.path, "0755"};
      break;
    case OpType::kUnlink:
      r = options_.vfs->unlink(op.path, ctx);
      sys_name = "SYS_unlink";
      lib_name = "unlink";
      args = {op.path};
      break;
    case OpType::kReaddir:
      r = options_.vfs->readdir(op.path, ctx);
      sys_name = "SYS_readdir";
      lib_name = "readdir";
      args = {op.path};
      break;
    case OpType::kMmap: {
      const int fd = slot(rank, op.slot).fd;
      r = options_.vfs->mmap(fd, ctx);
      sys_name = "SYS_mmap";
      lib_name = "mmap";
      args = {strprintf("%d", fd), "0"};
      amp_fd = fd;
      break;
    }
    default:
      throw ConfigError("exec_simple_path_op: unexpected op");
  }

  const SimTime lib_dur = r.cost + kLibWrapperCost;
  SimTime extra = 0;
  TraceEvent lib = trace::make_libcall(lib_name, args,
                                       static_cast<long long>(r.value));
  lib.duration = lib_dur;
  lib.path = op.path;
  extra += emit(rank, std::move(lib), t0, amp_fd);

  TraceEvent sys = trace::make_syscall(sys_name, args,
                                       static_cast<long long>(r.value));
  sys.duration = r.cost;
  sys.path = op.path;
  extra += emit(rank, std::move(sys), t0 + kLibWrapperCost, amp_fd);

  rs.now = t0 + lib_dur + extra;
}

void Runtime::exec_send(int rank, const Op& op) {
  RankState& rs = ranks_[static_cast<std::size_t>(rank)];
  const SimTime t0 = rs.now;
  if (op.peer < 0 || op.peer >= static_cast<int>(ranks_.size())) {
    throw ConfigError(strprintf("rank %d sends to invalid peer %d", rank,
                                op.peer));
  }
  const bool same_node =
      ranks_[static_cast<std::size_t>(op.peer)].node == rs.node;
  const SimTime transfer =
      cluster_.network().transfer_time(op.msg_bytes, same_node);
  const SimTime send_overhead =
      cluster_.network().params().per_message_overhead;

  mailbox_[{rank, op.peer, op.tag}].push_back(Message{t0 + transfer});

  TraceEvent lib = trace::make_libcall(
      "MPI_Send",
      {strprintf("%lld", static_cast<long long>(op.msg_bytes)),
       strprintf("%d", op.peer), strprintf("%d", op.tag)},
      0);
  lib.duration = send_overhead;
  lib.bytes = op.msg_bytes;
  const SimTime extra = emit(rank, std::move(lib), t0, -1);
  rs.now = t0 + send_overhead + extra;
}

bool Runtime::try_exec_recv(int rank, const Op& op) {
  RankState& rs = ranks_[static_cast<std::size_t>(rank)];
  auto it = mailbox_.find({op.peer, rank, op.tag});
  if (it == mailbox_.end() || it->second.empty()) {
    return false;
  }
  // Earliest-available message first.
  auto msg_it =
      std::min_element(it->second.begin(), it->second.end(),
                       [](const Message& a, const Message& b) {
                         return a.available < b.available;
                       });
  const SimTime t0 = rs.now;
  const SimTime ready = std::max(t0, msg_it->available);
  it->second.erase(msg_it);

  const SimTime recv_overhead =
      cluster_.network().params().per_message_overhead;
  TraceEvent lib = trace::make_libcall(
      "MPI_Recv", {strprintf("%d", op.peer), strprintf("%d", op.tag)}, 0);
  lib.duration = (ready - t0) + recv_overhead;
  const SimTime extra = emit(rank, std::move(lib), t0, -1);
  rs.now = ready + recv_overhead + extra;
  return true;
}

void Runtime::exec_clock_probe(int rank, const Op& op) {
  RankState& rs = ranks_[static_cast<std::size_t>(rank)];
  const SimTime t0 = rs.now;
  const SimTime local = cluster_.local_time(rs.node, t0);
  TraceEvent ev;
  ev.cls = EventClass::kClockProbe;
  ev.name = "clock_probe";
  ev.args = {op.label, strprintf("%.6f", to_seconds(local))};
  ev.duration = kProbeCost;
  const SimTime extra = emit(rank, std::move(ev), t0, -1);
  rs.now = t0 + kProbeCost + extra;
}

void Runtime::exec_annotate(int rank, const Op& op) {
  RankState& rs = ranks_[static_cast<std::size_t>(rank)];
  TraceEvent ev;
  ev.cls = EventClass::kAnnotation;
  ev.name = op.label;
  (void)emit(rank, std::move(ev), rs.now, -1);
}

void Runtime::exec_op(int rank, const Op& op) {
  switch (op.type) {
    case OpType::kCompute:
      ranks_[static_cast<std::size_t>(rank)].now += op.duration;
      return;
    case OpType::kOpen:
      exec_open(rank, op);
      return;
    case OpType::kClose:
      exec_close(rank, op);
      return;
    case OpType::kWriteBlocks:
      exec_io_blocks(rank, op, /*is_write=*/true);
      return;
    case OpType::kReadBlocks:
      exec_io_blocks(rank, op, /*is_write=*/false);
      return;
    case OpType::kMmapWrite:
      exec_mmap_io(rank, op, /*is_write=*/true);
      return;
    case OpType::kMmapRead:
      exec_mmap_io(rank, op, /*is_write=*/false);
      return;
    case OpType::kFsync:
    case OpType::kStat:
    case OpType::kStatfs:
    case OpType::kMkdir:
    case OpType::kUnlink:
    case OpType::kReaddir:
    case OpType::kMmap:
      exec_simple_path_op(rank, op);
      return;
    case OpType::kSend:
      exec_send(rank, op);
      return;
    case OpType::kClockProbe:
      exec_clock_probe(rank, op);
      return;
    case OpType::kAnnotate:
      exec_annotate(rank, op);
      return;
    case OpType::kBarrier:
    case OpType::kRecv:
      throw ConfigError("exec_op: synchronization op dispatched directly");
  }
}

void Runtime::try_release_barrier() {
  // A barrier releases when every unfinished rank is waiting on it.
  int waiting = 0;
  int active = 0;
  SimTime max_arrival = 0;
  for (const RankState& rs : ranks_) {
    if (rs.finished) {
      continue;
    }
    ++active;
    if (rs.waiting_barrier) {
      ++waiting;
      max_arrival = std::max(max_arrival, rs.now);
    }
  }
  if (active == 0 || waiting != active) {
    return;
  }

  const int n = static_cast<int>(ranks_.size());
  const int hops = n <= 1 ? 1 : static_cast<int>(std::ceil(std::log2(n)));
  const SimTime cost =
      2 * hops * cluster_.network().latency() + kBarrierPerHopCost;
  const SimTime release = max_arrival + cost;

  // Determine the label from rank 0's current op.
  std::string label;
  for (std::size_t r = 0; r < ranks_.size(); ++r) {
    if (!ranks_[r].finished) {
      const Op& op = job_[r][ranks_[r].pc];
      label = op.label.empty()
                  ? strprintf("barrier#%d", barrier_counter_)
                  : op.label;
      break;
    }
  }
  ++barrier_counter_;
  result_.barrier_release[label] = release;

  for (std::size_t r = 0; r < ranks_.size(); ++r) {
    RankState& rs = ranks_[r];
    if (rs.finished) {
      continue;
    }
    const SimTime arrival = rs.now;
    // Tiny deterministic stagger keeps per-rank exit stamps distinct, as on
    // a real interconnect fan-out.
    const SimTime exit_time = release + static_cast<SimTime>(r) * 500;

    TraceEvent lib = trace::make_libcall("MPI_Barrier", {"MPI_COMM_WORLD"}, 0);
    lib.duration = exit_time - arrival;
    lib.path = label;
    const SimTime extra = emit(static_cast<int>(r), std::move(lib), arrival, -1);

    rs.now = exit_time + extra;
    rs.waiting_barrier = false;
    ++rs.barrier_seq;
    ++rs.pc;
  }
}

RunResult Runtime::run(const std::vector<Program>& per_rank) {
  validate_job(per_rank);
  job_ = per_rank;
  result_ = RunResult{};
  mailbox_.clear();
  barrier_counter_ = 0;

  const int nranks = static_cast<int>(per_rank.size());
  const int needed_nodes =
      (nranks + options_.procs_per_node - 1) / options_.procs_per_node;
  if (needed_nodes > cluster_.node_count()) {
    throw ConfigError(
        strprintf("job needs %d nodes but cluster has %d", needed_nodes,
                  cluster_.node_count()));
  }

  ranks_.assign(static_cast<std::size_t>(nranks), RankState{});
  for (int r = 0; r < nranks; ++r) {
    RankState& rs = ranks_[static_cast<std::size_t>(r)];
    rs.node = r / options_.procs_per_node;
    rs.pid = cluster_.node(rs.node).first_pid +
             static_cast<std::uint32_t>(r % options_.procs_per_node);
    rs.now = options_.startup;
  }

  RunContext ctx{&cluster_, nranks, options_.cmdline};
  for (const auto& obs : options_.observers) {
    obs->on_run_begin(ctx);
  }

  int stalled_rounds = 0;
  for (;;) {
    try_release_barrier();

    // Pick the runnable rank with the smallest clock.
    int best = -1;
    for (int r = 0; r < nranks; ++r) {
      const RankState& rs = ranks_[static_cast<std::size_t>(r)];
      if (rs.finished || rs.waiting_barrier) {
        continue;
      }
      if (best < 0 ||
          rs.now < ranks_[static_cast<std::size_t>(best)].now) {
        best = r;
      }
    }
    if (best < 0) {
      // All finished, or all waiting on a barrier that cannot release.
      bool all_finished = true;
      for (const RankState& rs : ranks_) {
        all_finished = all_finished && rs.finished;
      }
      if (all_finished) {
        break;
      }
      throw ConfigError("job deadlocked at a barrier");
    }

    RankState& rs = ranks_[static_cast<std::size_t>(best)];
    if (rs.pc >= job_[static_cast<std::size_t>(best)].size()) {
      rs.finished = true;
      continue;
    }
    const Op& op = job_[static_cast<std::size_t>(best)][rs.pc];
    if (op.type == OpType::kBarrier) {
      rs.waiting_barrier = true;
      continue;  // released collectively
    }
    if (op.type == OpType::kRecv) {
      if (try_exec_recv(best, op)) {
        ++rs.pc;
        stalled_rounds = 0;
      } else {
        // Sender hasn't posted yet: defer by bumping this rank's clock past
        // the next runnable rank so the scheduler makes progress elsewhere.
        // If every rank is only deferring, the job is deadlocked.
        if (++stalled_rounds > 4 * nranks + 16) {
          throw ConfigError("job deadlocked on recv");
        }
        SimTime next = rs.now;
        for (int r = 0; r < nranks; ++r) {
          const RankState& other = ranks_[static_cast<std::size_t>(r)];
          if (r != best && !other.finished && !other.waiting_barrier) {
            next = std::max(next, other.now + 1);
          }
        }
        rs.now = next;
      }
      continue;
    }
    exec_op(best, op);
    ++rs.pc;
    stalled_rounds = 0;
  }

  // Drain batch buffers first: on_run_end handlers (post-processing,
  // dependency finalization) must observe fully delivered sinks.
  for (const auto& obs : options_.observers) {
    obs->flush();
  }
  for (const auto& obs : options_.observers) {
    obs->on_run_end();
  }

  result_.rank_end.reserve(ranks_.size());
  for (const RankState& rs : ranks_) {
    result_.rank_end.push_back(rs.now);
    result_.elapsed = std::max(result_.elapsed, rs.now);
  }
  return result_;
}

}  // namespace iotaxo::mpi
