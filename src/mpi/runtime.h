// The SimMPI runtime: executes one Program per rank on a simulated cluster
// in virtual time, synchronizing at barriers and point-to-point messages,
// charging file-system costs from the attached VFS, and emitting trace
// events to attached interposition observers.
//
// Tracing overhead enters the timeline through observers: each observer
// returns the extra virtual time its capture mechanism costs (a ptrace
// stop, a pipe write, ...). For events tied to a shared parallel file, that
// cost is multiplied by the file system's stall amplification — a traced
// process stopped mid-syscall holds stripe locks and stalls its peers,
// which is the mechanism behind the paper's N-to-1 overhead numbers.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "fs/vfs.h"
#include "mpi/program.h"
#include "sim/cluster.h"
#include "trace/event.h"

namespace iotaxo::mpi {

struct RunContext {
  const sim::Cluster* cluster = nullptr;
  int nranks = 0;
  std::string cmdline;
};

/// Interposition hook. on_event returns the extra virtual-time cost charged
/// to the calling rank (zero for mechanisms that don't intercept that event
/// class).
///
/// Observers that buffer events into per-rank batches (the ptrace tracers
/// and the dynamic interposer do) drain them in flush(). The runtime calls
/// flush() on every observer after the last rank finishes and *before* any
/// on_run_end(), so end-of-run processing always sees fully delivered
/// sinks. This same call is the drain barrier for observers running in
/// async-flush mode: their flush() blocks until the AsyncBatchSink queue is
/// empty, so concurrent delivery never makes observed results
/// nondeterministic.
class IoObserver {
 public:
  virtual ~IoObserver() = default;
  virtual void on_run_begin(const RunContext& ctx) { (void)ctx; }
  [[nodiscard]] virtual SimTime on_event(const trace::TraceEvent& ev) = 0;
  /// Drain any buffered batches to the observer's sink.
  virtual void flush() {}
  virtual void on_run_end() {}
};

/// //TRACE-style throttling hook: inject completion delay into selected
/// I/O events ("slowing the response time of a single node to I/O
/// requests", §2.3).
class Throttler {
 public:
  virtual ~Throttler() = default;
  [[nodiscard]] virtual SimTime delay(const trace::TraceEvent& ev) = 0;
};

struct RunOptions {
  fs::VfsPtr vfs;
  int procs_per_node = 1;
  /// Job launch cost before rank 0's first op (mpirun + binary load).
  SimTime startup = from_millis(300.0);
  /// Application command line recorded in annotations (Figure 1 style).
  std::string cmdline = "/app.exe";
  std::vector<std::shared_ptr<IoObserver>> observers;
  std::shared_ptr<Throttler> throttler;
  /// uid/gid the job runs as (anonymization test material).
  std::uint32_t uid = 4001;
  std::uint32_t gid = 400;
};

struct RunResult {
  /// Global makespan including startup.
  SimTime elapsed = 0;
  std::vector<SimTime> rank_end;
  Bytes bytes_written = 0;
  Bytes bytes_read = 0;
  long long events_emitted = 0;
  /// Global release instant of each labelled barrier (bandwidth windows).
  std::map<std::string, SimTime> barrier_release;
  /// Virtual time spent inside I/O calls, summed over ranks.
  SimTime total_io_time = 0;
};

class Runtime {
 public:
  Runtime(const sim::Cluster& cluster, RunOptions options);

  /// Execute the job; throws ConfigError on malformed jobs and IoError on
  /// invalid file operations. Deterministic for fixed inputs.
  [[nodiscard]] RunResult run(const std::vector<Program>& per_rank);

  [[nodiscard]] const RunOptions& options() const noexcept { return options_; }

 private:
  struct SlotState {
    int fd = -1;
    Bytes cursor = 0;
  };

  struct RankState {
    SimTime now = 0;
    std::size_t pc = 0;
    bool finished = false;
    bool waiting_barrier = false;
    bool waiting_recv = false;
    int barrier_seq = 0;
    int node = 0;
    std::uint32_t pid = 0;
    std::map<int, SlotState> slots;
  };

  struct Message {
    SimTime available = 0;
  };

  // Execution helpers; each advances state.now and may emit events.
  void exec_op(int rank, const Op& op);
  void exec_open(int rank, const Op& op);
  void exec_close(int rank, const Op& op);
  void exec_io_blocks(int rank, const Op& op, bool is_write);
  void exec_mmap_io(int rank, const Op& op, bool is_write);
  void exec_simple_path_op(int rank, const Op& op);
  void exec_send(int rank, const Op& op);
  bool try_exec_recv(int rank, const Op& op);  // false if must wait
  void exec_clock_probe(int rank, const Op& op);
  void exec_annotate(int rank, const Op& op);

  void try_release_barrier();

  /// Fill identity fields, timestamp the event at `start`, deliver it to
  /// observers/throttler, and return the extra cost to charge (already
  /// amplified for shared-file lock coupling when `amp_fd` >= 0).
  [[nodiscard]] SimTime emit(int rank, trace::TraceEvent ev, SimTime start,
                             int amp_fd);

  [[nodiscard]] fs::OpCtx ctx_for(int rank, fs::AccessHint hint) const;
  [[nodiscard]] SlotState& slot(int rank, int slot_index);

  const sim::Cluster& cluster_;
  RunOptions options_;
  std::vector<Program> job_;
  std::vector<RankState> ranks_;
  std::map<std::tuple<int, int, int>, std::vector<Message>> mailbox_;
  RunResult result_;
  int barrier_counter_ = 0;

  // Small fixed costs of the syscall layer itself (untraced).
  static constexpr SimTime kLseekCost = 800;            // ns
  static constexpr SimTime kLibWrapperCost = 500;       // ns
  static constexpr SimTime kBarrierPerHopCost = 30'000; // ns software term
  static constexpr SimTime kProbeCost = 2'000;          // ns
};

}  // namespace iotaxo::mpi
