// UnifiedTraceStore — the paper's §6 future-work goal, implemented:
// "We intend to build a common framework for diverse trace aggregation.
// With such a framework, we would be able to present a single trace-data
// API to developers for use while building trace analysis tools."
//
// The store ingests bundles captured by *any* framework (ptrace text
// traces, Tracefs binary VFS streams, //TRACE interposition traces) — or
// raw EventBatches straight off the batched capture pipeline, or IOTB2
// files opened zero-copy through trace::BatchView — normalizes timestamps
// onto a common timeline when skew/drift probes are available, and answers
// the queries analysis tools need: per-call statistics, per-rank activity,
// time-windowed I/O rates, and file heat.
//
// Internally every source lives in a *pool*: one owned trace::EventBatch
// (fixed-size records plus an interned string pool), a view-backed pool (a
// MappedTraceFile plus the BatchView into it — records are scanned in
// place, never decoded), or a block-backed pool (a MappedTraceFile plus a
// BlockView over an IOTB3 container — compressed/checksummed blocks
// decoded lazily, only when a query touches them). Queries iterate flat
// records and compare interned ids instead of strings, so aggregate scans
// stay cheap at millions of events (the columnar bulk-iteration the DFG
// syscall-inspection line of work depends on).
//
// Each pool carries an index built once at ingest — min/max corrected
// timestamp and a name-id presence filter — that lets the windowed and
// transfer-oriented queries skip whole pools before scanning a record;
// block-backed pools get theirs straight from the container footer, no
// record is decoded at ingest. Below the pool index sits the *segment*
// seam: every accessor partitions its records into index-carrying
// segments (one per pool for owned/view pools, one per block for
// block-backed pools), and queries skip or stream segments the same way
// they skip pools — a narrow window on a compressed era decompresses only
// the blocks it overlaps. Segments whose records sit serialized in the
// v2 fixed stride also expose their raw bytes, which the queries feed to
// the SIMD scan kernels (trace/scan_kernels.h) instead of per-record
// accessor loops. set_use_indexes(false) disables both skip levels for
// benchmarking; results are identical either way. compact(era_bytes)
// merges runs of small owned pools into era-sized batches (re-interned
// once, source infos preserved) so pool count stays bounded in long-lived
// aggregation services; the cold-tier overload additionally writes each
// era out as an IOTB3 file and re-files it as a block-backed pool, so old
// eras shrink to compressed storage yet stay queryable.
//
// Aggregate queries (call_stats, bytes_in_window, io_rate_series,
// hottest_files) scan pools in parallel when set_query_threads allows:
// each worker chunk builds a partial and the partials are merged in pool
// (== source) order, so results are bit-identical to the serial scan.
// Queries remain const and safe to issue concurrently; ingest, compact and
// the setters are configuration and must not race with them.
#pragma once

#include <algorithm>
#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/skew_drift.h"
#include "trace/binary_format.h"
#include "trace/block_view.h"
#include "trace/bundle.h"
#include "trace/event_batch.h"
#include "trace/record_view.h"

namespace iotaxo::analysis {

// Every query sees a pool's records through one of three accessors with
// the same shape: BatchAccess over an owned EventBatch, ViewAccess over a
// zero-copy BatchView, BlockAccess over a lazily-decoded IOTB3 BlockView.
// All are cheap value types; the dispatch happens once per pool
// (UnifiedTraceStore::with_pool_access), so per-record loops stay
// monomorphized. The seam is public so analysis subsystems that stream
// pool records themselves (the DFG miner, tools) reuse it instead of
// materializing batches or growing friend access.
//
// Besides per-record access, every accessor exposes the *segment* seam:
// segment_count() index-carrying record ranges (a single whole-pool
// segment for owned/view pools, one per block for block-backed pools).
// The segment_has_* / segment_overlaps predicates are conservative —
// "true" means "may contain" — so skipping a false segment is always
// exact. segment_record_bytes() returns the segment's records serialized
// in the v2 fixed stride for the SIMD scan kernels, or nullptr when the
// pool's records are not serialized (owned batches). For projected IOTB3
// pools, segment_hot_bytes() additionally exposes just the hot column
// group (hotlayout stride) so narrow queries decode a fraction of the
// stored bytes; segment_prefetch() decodes a set of segments across a
// thread pool before a serial scan walks them (block-backed pools only —
// a no-op elsewhere).

struct BatchAccess {
  const trace::EventBatch* b;

  [[nodiscard]] std::size_t size() const noexcept { return b->size(); }
  [[nodiscard]] const trace::EventRecord& record(std::size_t i) const {
    return b->record(i);
  }
  [[nodiscard]] std::string_view name(std::size_t i) const {
    return b->name(i);
  }
  [[nodiscard]] std::string_view path(std::size_t i) const {
    return b->path(i);
  }
  [[nodiscard]] std::size_t string_count() const noexcept {
    return b->pool().size();
  }
  [[nodiscard]] std::string_view string(trace::StrId id) const {
    return b->pool().view(id);
  }
  [[nodiscard]] std::optional<trace::StrId> find(std::string_view s) const {
    return b->pool().find(s);
  }
  /// args_begin is carried by the owned record itself; the parameter keeps
  /// the signature uniform with ViewAccess.
  [[nodiscard]] trace::TraceEvent materialize(std::size_t i,
                                              std::uint32_t /*args_begin*/)
      const {
    return b->materialize(i);
  }

  // Segment seam: one segment, no finer index, records not serialized.
  [[nodiscard]] std::size_t segment_count() const noexcept { return 1; }
  [[nodiscard]] std::size_t segment_begin(std::size_t) const noexcept {
    return 0;
  }
  [[nodiscard]] std::size_t segment_end(std::size_t) const noexcept {
    return b->size();
  }
  [[nodiscard]] std::uint32_t segment_args_begin(std::size_t) const noexcept {
    return 0;
  }
  [[nodiscard]] bool segment_overlaps(std::size_t, SimTime,
                                      SimTime) const noexcept {
    return true;
  }
  [[nodiscard]] bool segment_stamp_bounds(std::size_t, SimTime*,
                                          SimTime*) const noexcept {
    return false;
  }
  [[nodiscard]] bool segment_has_name(std::size_t,
                                      trace::StrId id) const noexcept {
    return id != 0;
  }
  [[nodiscard]] bool segment_has_fd_path(std::size_t) const noexcept {
    return true;
  }
  [[nodiscard]] bool segment_has_io_bytes(std::size_t) const noexcept {
    return true;
  }
  [[nodiscard]] bool segment_has_io_call(std::size_t) const noexcept {
    return true;
  }
  [[nodiscard]] const std::uint8_t* segment_record_bytes(std::size_t) const {
    return nullptr;
  }
  [[nodiscard]] const std::uint8_t* segment_hot_bytes(std::size_t) const {
    return nullptr;
  }
  void segment_prefetch(const std::vector<std::size_t>&, std::size_t,
                        bool) const noexcept {}
};

struct ViewAccess {
  const trace::BatchView* v;

  [[nodiscard]] std::size_t size() const noexcept { return v->size(); }
  [[nodiscard]] trace::EventRecord record(std::size_t i) const {
    return v->record(i).to_record();
  }
  [[nodiscard]] std::string_view name(std::size_t i) const {
    return v->string(v->record(i).name());
  }
  [[nodiscard]] std::string_view path(std::size_t i) const {
    return v->string(v->record(i).path());
  }
  [[nodiscard]] std::size_t string_count() const noexcept {
    return v->string_count();
  }
  [[nodiscard]] std::string_view string(trace::StrId id) const {
    return v->string(id);
  }
  [[nodiscard]] std::optional<trace::StrId> find(std::string_view s) const {
    return v->find_string(s);
  }
  [[nodiscard]] trace::TraceEvent materialize(std::size_t i,
                                              std::uint32_t args_begin) const {
    return v->materialize(i, args_begin);
  }

  // Segment seam: one segment, no finer index, records serialized in
  // place (the deferred v2 CRC is verified when the bytes are handed out).
  [[nodiscard]] std::size_t segment_count() const noexcept { return 1; }
  [[nodiscard]] std::size_t segment_begin(std::size_t) const noexcept {
    return 0;
  }
  [[nodiscard]] std::size_t segment_end(std::size_t) const noexcept {
    return v->size();
  }
  [[nodiscard]] std::uint32_t segment_args_begin(std::size_t) const noexcept {
    return 0;
  }
  [[nodiscard]] bool segment_overlaps(std::size_t, SimTime,
                                      SimTime) const noexcept {
    return true;
  }
  [[nodiscard]] bool segment_stamp_bounds(std::size_t, SimTime*,
                                          SimTime*) const noexcept {
    return false;
  }
  [[nodiscard]] bool segment_has_name(std::size_t,
                                      trace::StrId id) const noexcept {
    return id != 0;
  }
  [[nodiscard]] bool segment_has_fd_path(std::size_t) const noexcept {
    return true;
  }
  [[nodiscard]] bool segment_has_io_bytes(std::size_t) const noexcept {
    return true;
  }
  [[nodiscard]] bool segment_has_io_call(std::size_t) const noexcept {
    return true;
  }
  [[nodiscard]] const std::uint8_t* segment_record_bytes(std::size_t) const {
    return v->record_bytes().data();
  }
  [[nodiscard]] const std::uint8_t* segment_hot_bytes(std::size_t) const {
    return nullptr;
  }
  void segment_prefetch(const std::vector<std::size_t>&, std::size_t,
                        bool) const noexcept {}
};

struct BlockAccess {
  const trace::BlockView* v;

  [[nodiscard]] std::size_t size() const noexcept { return v->size(); }
  [[nodiscard]] trace::EventRecord record(std::size_t i) const {
    return v->record(i).to_record();
  }
  [[nodiscard]] std::string_view name(std::size_t i) const {
    return v->string(v->record(i).name());
  }
  [[nodiscard]] std::string_view path(std::size_t i) const {
    return v->string(v->record(i).path());
  }
  [[nodiscard]] std::size_t string_count() const noexcept {
    return v->string_count();
  }
  [[nodiscard]] std::string_view string(trace::StrId id) const {
    return v->string(id);
  }
  [[nodiscard]] std::optional<trace::StrId> find(std::string_view s) const {
    return v->find_string(s);
  }
  [[nodiscard]] trace::TraceEvent materialize(std::size_t i,
                                              std::uint32_t args_begin) const {
    return v->materialize(i, args_begin);
  }

  // Segment seam: one segment per block, backed by the footer mini-index;
  // touching a segment's records (or bytes) decodes and verifies exactly
  // that block.
  [[nodiscard]] std::size_t segment_count() const noexcept {
    return v->block_count();
  }
  [[nodiscard]] std::size_t segment_begin(std::size_t k) const noexcept {
    return v->block_first(k);
  }
  [[nodiscard]] std::size_t segment_end(std::size_t k) const noexcept {
    return v->block_first(k) + v->block_size(k);
  }
  [[nodiscard]] std::uint32_t segment_args_begin(std::size_t k) const noexcept {
    // Cannot wrap: BlockView::open rejects containers declaring more than
    // 2^32 argument ids, and every block's args_begin <= nargids.
    return static_cast<std::uint32_t>(v->block_args_begin(k));
  }
  /// True when some record's stamp may lie in the half-open [begin, end).
  [[nodiscard]] bool segment_overlaps(std::size_t k, SimTime begin,
                                      SimTime end) const noexcept {
    return v->block_max_time(k) >= begin && v->block_min_time(k) < end;
  }
  /// Exact min/max corrected stamp of the segment, straight from the
  /// footer mini-index — no block is decoded. Only meaningful for
  /// non-empty segments (the encoder never writes an empty block).
  [[nodiscard]] bool segment_stamp_bounds(std::size_t k, SimTime* lo,
                                          SimTime* hi) const noexcept {
    *lo = v->block_min_time(k);
    *hi = v->block_max_time(k);
    return true;
  }
  [[nodiscard]] bool segment_has_name(std::size_t k,
                                      trace::StrId id) const noexcept {
    return v->block_has_name(k, id);
  }
  [[nodiscard]] bool segment_has_fd_path(std::size_t k) const noexcept {
    return v->block_has_fd_path(k);
  }
  [[nodiscard]] bool segment_has_io_bytes(std::size_t k) const noexcept {
    return v->block_has_io_bytes(k);
  }
  [[nodiscard]] bool segment_has_io_call(std::size_t k) const noexcept {
    return v->block_has_io_call(k);
  }
  [[nodiscard]] const std::uint8_t* segment_record_bytes(std::size_t k) const {
    return v->block_bytes(k).data();
  }
  /// The segment's HOT column group (hotlayout stride) for projected
  /// containers — decodes only that group — or nullptr otherwise (callers
  /// fall back to segment_record_bytes / per-record loops).
  [[nodiscard]] const std::uint8_t* segment_hot_bytes(std::size_t k) const {
    return v->projected() ? v->hot_bytes(k).data() : nullptr;
  }
  /// Parallel-decode `segs` before a serial scan: failures stay sticky in
  /// the block cache and rethrow deterministically when the scan touches
  /// the failed segment.
  void segment_prefetch(const std::vector<std::size_t>& segs,
                        std::size_t threads, bool hot_only) const {
    v->decode_blocks(segs, threads, hot_only);
  }
};

struct StoreSourceInfo {
  std::string framework;
  std::string application;
  long long events = 0;
  bool time_corrected = false;
  /// True when the source is served zero-copy from a mapped IOTB2 file.
  bool view_backed = false;
};

struct CallStats {
  long long count = 0;
  SimTime total_time = 0;
  Bytes total_bytes = 0;
  bool operator==(const CallStats&) const = default;
};

struct FileHeat {
  std::string path;
  long long ops = 0;
  Bytes bytes = 0;
  bool operator==(const FileHeat&) const = default;
};

/// Shape of one storage pool, reported by pool_infos() so tools and
/// benches can describe a store (pool count, sizes, eras, owned vs view)
/// without friend access to the pool internals.
struct StorePoolInfo {
  /// Sources [first_source, first_source + source_count) live in this pool
  /// (source_count > 1 only after compact()).
  std::size_t first_source = 0;
  std::size_t source_count = 1;
  long long records = 0;
  /// Approximate resident footprint: in-memory batch bytes for owned
  /// pools, container file bytes for view-backed pools.
  std::size_t approx_bytes = 0;
  bool view_backed = false;
  /// True for pools served from an IOTB3 BlockView (cold-tier compaction
  /// output or a v3 ingest_view); `blocks` is then the container's block
  /// count, else 0.
  bool block_backed = false;
  std::size_t blocks = 0;
  /// Block-backed container flags and the decode footprint so far:
  /// stored_bytes is the container's total stored block bytes,
  /// decoded_stored_bytes how many of them queries have decoded (hot and
  /// cold groups counted separately). Zero for non-block pools.
  bool encrypted = false;
  bool projected = false;
  std::size_t stored_bytes = 0;
  std::size_t decoded_stored_bytes = 0;
  /// Blocks whose decode has failed sticky so far (block-backed pools;
  /// grows as queries touch damaged blocks — see ScanPolicy::skip_damaged).
  std::size_t damaged_blocks = 0;
  /// Pool-index time span (valid iff `any`): min/max corrected stamp.
  bool any = false;
  SimTime min_time = 0;
  SimTime max_time = 0;
  /// Streaming-ingest state: open_era is true while this pool is the
  /// store's growing open batch (seal_open_era / a large ingest closes it);
  /// flushes_absorbed counts the ingest calls folded into it (0 for pools
  /// that never streamed).
  bool open_era = false;
  std::size_t flushes_absorbed = 0;
  /// View-backed v2 pools only: the container carried a valid persisted
  /// index footer and the pool adopted it instead of scanning records.
  bool persisted_index = false;
  bool operator==(const StorePoolInfo&) const = default;
};

/// One container attach_dir could not serve, and why. `file` is the name
/// within the directory (no path components).
struct QuarantinedFile {
  std::string file;
  std::string reason;
  bool operator==(const QuarantinedFile&) const = default;
};

/// What attach_dir found and did: the recovery report. The store serves
/// exactly `recovered_eras` containers; everything in `quarantined` stays
/// on disk, reported but unserved (nothing but `.tmp` files is deleted).
struct StoreHealth {
  std::size_t recovered_eras = 0;
  std::size_t torn_tmps_removed = 0;
  std::vector<QuarantinedFile> quarantined;
  [[nodiscard]] bool healthy() const noexcept { return quarantined.empty(); }
};

/// Knobs for attach_dir.
struct AttachOptions {
  /// Key for encrypted containers in the directory.
  std::optional<CipherKey> key;
  /// Source metadata applied to every attached container ("framework",
  /// "application").
  std::map<std::string, std::string> metadata;
};

/// Knobs for streaming (era-aware) ingest: set_stream_ingest routes small
/// flushes into one growing *open era* pool instead of filing a pool per
/// flush, so a long capture session produces tens of pools, not tens of
/// thousands. The open era's index is maintained incrementally per append
/// (stamp bounds extended, presence flags OR'd — never a rescan).
struct StreamIngestOptions {
  /// Flushes of at most this many events are absorbed into the open era;
  /// larger ingests seal it and file their own pool as before.
  std::size_t flush_events = 4096;
  /// Seal the open era once its approximate in-memory footprint exceeds
  /// this (the same quantity compact() sizes eras by).
  std::size_t era_bytes = 8u << 20;
  /// Also seal after this many absorbed flushes — an age bound for
  /// low-rate streams. 0 = no flush-count bound.
  std::size_t era_flushes = 0;
};

/// How queries react to damaged data (sticky per-block decode failures).
struct ScanPolicy {
  /// Default off: the first touched bad block fails the query (FormatError)
  /// exactly as before. Opt in to skip damaged segments instead: the query
  /// completes over everything healthy and the store accumulates
  /// skipped_blocks / skipped_records (damage_counters(), pool_infos()).
  bool skip_damaged = false;
};

/// Cumulative damage skipped by queries since the last reset (only grows
/// under ScanPolicy::skip_damaged). A segment is counted once per query
/// that skips it, so an uncorrupted twin store always reports {0, 0}.
struct DamageCounters {
  std::uint64_t skipped_blocks = 0;
  std::uint64_t skipped_records = 0;
  bool operator==(const DamageCounters&) const = default;
};

class UnifiedTraceStore {
 public:
  /// Ingest a bundle. If it carries clock probes, a skew/drift model is
  /// fitted and all of its event timestamps are corrected onto the common
  /// timeline; otherwise node-local stamps are used as-is (flagged in the
  /// source info). Returns the source index.
  std::size_t ingest(const trace::TraceBundle& bundle);

  /// Ingest a capture batch directly — no per-event heap objects are
  /// rebuilt; records are re-interned into the store's source batch.
  /// `metadata` mirrors the bundle keys ("framework", "application");
  /// `clock_probes` enables timeline correction exactly as for bundles.
  std::size_t ingest(
      const trace::EventBatch& batch,
      const std::map<std::string, std::string>& metadata = {},
      const std::vector<trace::TraceEvent>& clock_probes = {},
      const std::vector<trace::DependencyEdge>& dependencies = {});

  /// Ingest a container zero-copy: the store takes ownership of the mapped
  /// file and serves the source straight from a view. IOTB2 must be
  /// uncompressed and unencrypted (records are scanned once at ingest to
  /// build the pool index); IOTB3 may also be compressed/checksummed — its
  /// pool index is built from the footer mini-index alone, so no block is
  /// decompressed at ingest. View sources use raw node-local stamps (no
  /// timeline correction; decode to a batch and use the batch overload when
  /// probes must be applied). `key` opens encrypted IOTB3 containers (a
  /// wrong or missing key throws FormatError at ingest; blocks decrypt
  /// lazily as queries touch them). Throws FormatError if the container is
  /// not view-able.
  std::size_t ingest_view(trace::MappedTraceFile file,
                          const std::map<std::string, std::string>& metadata = {},
                          const std::optional<CipherKey>& key = std::nullopt);
  /// Convenience: map `path` and ingest it zero-copy.
  std::size_t ingest_view(const std::string& path,
                          const std::map<std::string, std::string>& metadata = {},
                          const std::optional<CipherKey>& key = std::nullopt);
  /// Ingest an already-validated pair: `view` must borrow `file`'s bytes
  /// (checked; ConfigError otherwise). Callers that probed the container
  /// themselves (the CLI's view-or-decode fallback) file it without
  /// paying the open-time validation a second time.
  std::size_t ingest_view(trace::MappedTraceFile file, trace::BatchView view,
                          const std::map<std::string, std::string>& metadata = {});
  /// Same, for an IOTB3 block view.
  std::size_t ingest_view(trace::MappedTraceFile file, trace::BlockView view,
                          const std::map<std::string, std::string>& metadata = {});

  /// Attach a crash-safe store directory (one the cold tier spills into),
  /// recovering from whatever a crash left behind: orphaned `<name>.tmp`
  /// files are deleted, the directory's MANIFEST.iotm (when present)
  /// decides which containers are committed, and every committed container
  /// that still matches its recorded size + CRC and opens cleanly is
  /// ingested zero-copy. Containers that fail any validation — and
  /// committed-looking files the manifest does not list (a crash between
  /// the era rename and the manifest rename) — are *quarantined*: reported
  /// in the returned StoreHealth, left on disk, not served, and never
  /// aborting the attach. Without a manifest (or with a corrupt one, which
  /// is itself quarantined) every container that opens cleanly is served.
  /// Also advances the cold-era counter past everything seen, so later
  /// cold compactions into the directory cannot collide. Throws IoError
  /// only when the directory itself cannot be read.
  StoreHealth attach_dir(const std::string& directory,
                         const AttachOptions& options = {});

  /// Merge runs of adjacent small *owned* pools into era-sized batches of
  /// at most ~era_bytes each (approximate in-memory footprint). Source
  /// infos, source indexing and every query result are preserved exactly;
  /// view-backed pools are never touched. Bounds pool count for long-lived
  /// aggregation services. Returns the pool count after compaction.
  std::size_t compact(std::size_t era_bytes);

  /// How compact(era_bytes, cold) writes its cold tier.
  struct ColdTierOptions {
    /// Directory the era containers are written into (must exist).
    std::string directory;
    /// Container options for the eras: compress/checksum/encrypt/project
    /// all flow to the v3 encoder (encrypt requires `binary.key`, which is
    /// also used to open the written era for swap-in). Version is forced
    /// to 3.
    trace::BinaryOptions binary;
    std::uint32_t block_records = trace::v3layout::kDefaultBlockRecords;
    /// Era files are named <directory>/<file_prefix>-<n>.iotb3, where n is
    /// a store-lifetime monotonic counter: repeated cold compactions never
    /// reuse a number, so an era a live pool still mmaps is never
    /// truncated. A name that nevertheless already exists on disk (another
    /// store writing the same prefix) raises IoError instead of
    /// overwriting.
    std::string file_prefix = "era";
  };

  /// Era compaction with a cold tier: merge owned pools exactly as
  /// compact(era_bytes), then spill each merged era to an IOTB3 container
  /// under `cold.directory` and swap the pool to a block-backed view of
  /// the mapped file — the in-memory batch is released, and later queries
  /// decode only the blocks they touch. Query results are preserved
  /// exactly; covered sources become view-backed (source_batch() then
  /// throws for them). Returns the pool count.
  std::size_t compact(std::size_t era_bytes, const ColdTierOptions& cold);

  /// Number of internal storage pools (== sources until compact() merges
  /// some).
  [[nodiscard]] std::size_t pool_count() const noexcept {
    return pools_.size();
  }

  /// Per-pool shape (record count, footprint, index time span, owned vs
  /// view), in pool (== source) order.
  [[nodiscard]] std::vector<StorePoolInfo> pool_infos() const;

  /// Run fn with pool `p`'s accessor (BatchAccess, ViewAccess or
  /// BlockAccess): the same seam every built-in query scans through, for
  /// callers that stream pool records themselves. Throws ConfigError on an
  /// out-of-range pool.
  template <class Fn>
  decltype(auto) with_pool_access(std::size_t p, Fn&& fn) const {
    check_pool_index(p);
    const StorePool& pool = pools_[p];
    if (pool.blocks.has_value()) {
      return fn(BlockAccess{&*pool.blocks});
    }
    if (pool.view.has_value()) {
      return fn(ViewAccess{&*pool.view});
    }
    return fn(BatchAccess{&pool.batch});
  }

  /// Worker threads aggregate scans may use: 0 = auto (hardware
  /// concurrency), 1 = serial. Scans go parallel only when several sources
  /// are ingested; partial merges keep results identical either way.
  void set_query_threads(std::size_t threads) noexcept {
    query_threads_ = threads;
  }
  [[nodiscard]] std::size_t query_threads() const noexcept {
    return query_threads_;
  }

  /// Pool-index skips on/off (default on). Results are identical either
  /// way; the off position exists so bench_zero_copy can measure the win.
  void set_use_indexes(bool use) noexcept { use_indexes_ = use; }
  [[nodiscard]] bool use_indexes() const noexcept { return use_indexes_; }

  /// Enable streaming ingest (see StreamIngestOptions). Query results are
  /// identical to one-pool-per-flush ingest — the open era batch is exactly
  /// what compact() would have produced from the individual pools.
  void set_stream_ingest(const StreamIngestOptions& options) {
    stream_ = options;
  }
  /// Disable streaming ingest, sealing any open era first.
  void disable_stream_ingest() {
    seal_open_era();
    stream_.reset();
  }
  [[nodiscard]] bool stream_ingest_enabled() const noexcept {
    return stream_.has_value();
  }
  /// Close the open era batch (it becomes an ordinary sealed pool that
  /// compact() / the cold tier may merge or spill). Returns whether an open
  /// era existed. The next absorbed flush starts a fresh era.
  bool seal_open_era();

  /// Adopt persisted v2 index footers at ingest_view/attach_dir (default
  /// on) instead of scanning records. The off position exists so tests and
  /// bench_ingest can compare adopted vs rebuilt indexes; results are
  /// identical either way.
  void set_adopt_indexes(bool adopt) noexcept { adopt_indexes_ = adopt; }
  [[nodiscard]] bool adopt_indexes() const noexcept { return adopt_indexes_; }

  /// Called after records [begin_record, end_record) of pool `pool` are
  /// filed (any ingest path: new pool, open-era append, attached
  /// container). At most one listener; set an empty function to detach.
  /// The live-DFG maintainer (analysis/dfg/live_dfg.h) hangs off this seam.
  using IngestListener =
      std::function<void(std::size_t pool, std::size_t begin_record,
                         std::size_t end_record)>;
  void set_ingest_listener(IngestListener listener) {
    ingest_listener_ = std::move(listener);
  }

  /// Damage tolerance for queries (ScanPolicy::skip_damaged); default is
  /// fail-fast.
  void set_scan_policy(ScanPolicy policy) noexcept { scan_policy_ = policy; }
  [[nodiscard]] ScanPolicy scan_policy() const noexcept {
    return scan_policy_;
  }

  /// Damage skipped by queries so far (grows only under skip_damaged).
  [[nodiscard]] DamageCounters damage_counters() const noexcept {
    return {damage_->blocks.load(std::memory_order_relaxed),
            damage_->records.load(std::memory_order_relaxed)};
  }
  void reset_damage_counters() noexcept {
    damage_->blocks.store(0, std::memory_order_relaxed);
    damage_->records.store(0, std::memory_order_relaxed);
  }

  [[nodiscard]] const std::vector<StoreSourceInfo>& sources() const noexcept {
    return sources_;
  }
  [[nodiscard]] long long total_events() const noexcept {
    return total_events_;
  }

  /// A source's events in normalized columnar form (local_start already on
  /// the common timeline). Only available while the source still has its
  /// own owned pool: throws ConfigError for view-backed sources (their
  /// records live in the mapped file, not an EventBatch) and for sources
  /// merged away by compact().
  [[nodiscard]] const trace::EventBatch& source_batch(
      std::size_t source) const;

  /// Per-call-name statistics across every ingested source.
  [[nodiscard]] std::map<std::string, CallStats> call_stats() const;

  /// Events of one rank in timeline order (all sources merged),
  /// materialized for the caller.
  [[nodiscard]] std::vector<trace::TraceEvent> rank_timeline(int rank) const;

  /// Bytes moved by I/O calls inside [begin, end) on the common timeline.
  [[nodiscard]] Bytes bytes_in_window(SimTime begin, SimTime end) const;

  /// I/O rate series: total bytes per fixed-width bucket across the span
  /// of ingested events. Returns (bucket start, bytes) pairs.
  [[nodiscard]] std::vector<std::pair<SimTime, Bytes>> io_rate_series(
      SimTime bucket_width) const;

  /// Hottest files by byte volume (descending), up to `limit`.
  [[nodiscard]] std::vector<FileHeat> hottest_files(std::size_t limit) const;

  /// All dependency edges across sources.
  [[nodiscard]] const std::vector<trace::DependencyEdge>& dependencies()
      const noexcept {
    return dependencies_;
  }

 private:
  /// Built once per pool at ingest (and rebuilt on compaction merge): the
  /// facts that let queries skip a pool without touching its records.
  struct PoolIndex {
    bool any = false;          // pool has at least one record
    SimTime min_time = 0;      // min/max corrected local_start (valid iff any)
    SimTime max_time = 0;
    bool has_fd_path = false;  // some record carries fd >= 0 with a path
    bool has_io_bytes = false; // some I/O-class record moved bytes > 0
    /// Interned ids of the transfer syscalls in this pool's string table
    /// (0 = not interned), resolved once at ingest so windowed queries
    /// never re-search the table (linear for view-backed pools).
    trace::StrId sys_write_id = 0;
    trace::StrId sys_read_id = 0;
    /// name_present[id]: some record's *name* is string id `id` (ids that
    /// only appear as args/paths/hosts stay false).
    std::vector<bool> name_present;

    /// True when string id `id` appears as some record's name (id 0 means
    /// "string not interned in this pool": always false).
    [[nodiscard]] bool has_name(trace::StrId id) const noexcept {
      return id != 0 && id < name_present.size() && name_present[id];
    }
  };

  /// One storage unit: an owned batch (views disengaged), a view-backed
  /// mapped IOTB2 file, or a block-backed mapped IOTB3 file. Covers sources
  /// [first_source, first_source + source_count) — more than one only after
  /// compact().
  struct StorePool {
    trace::EventBatch batch;
    trace::MappedTraceFile file;
    std::optional<trace::BatchView> view;
    std::optional<trace::BlockView> blocks;
    PoolIndex index;
    std::size_t first_source = 0;
    std::size_t source_count = 1;
    /// Streaming ingest: true while this is the store's open era batch
    /// (always the LAST pool — any non-absorbing ingest seals it first, so
    /// pools stay sorted by first_source); flushes counts the ingest calls
    /// absorbed (0 for pools that never streamed).
    bool open = false;
    std::size_t flushes = 0;
    /// A valid persisted v2 index footer was adopted for this pool.
    bool persisted_index = false;
  };

  [[nodiscard]] std::optional<SkewDriftModel> fit_model(
      const std::vector<trace::TraceEvent>& clock_probes,
      StoreSourceInfo& info) const;

  /// Shared tail of the owned-batch ingest overloads: timeline-correct the
  /// batch, account it, index it, and file it as a new source.
  std::size_t ingest_source(
      StoreSourceInfo info, trace::EventBatch batch,
      const std::optional<SkewDriftModel>& model,
      const std::vector<trace::DependencyEdge>& dependencies);

  [[nodiscard]] const StorePool& pool_for(std::size_t source) const;

  /// Bounds check shared by the inline pool accessors.
  void check_pool_index(std::size_t p) const;

  /// (Re)build a pool's skip index: adopt a persisted footer when the pool
  /// is a v2 view carrying a valid one (and adopt_indexes_), else fold a
  /// full record scan through the same seam open-era appends extend
  /// through (fold_index_records).
  void index_pool(StorePool& pool);

  /// The one index-maintenance seam: fold records [begin, end) of an
  /// accessor into `idx` (stamp bounds, presence flags, name filter).
  /// Callers size idx.name_present and resolve the transfer-call ids; both
  /// full ingest scans and incremental open-era appends run through this.
  template <class Acc>
  static void fold_index_records(PoolIndex& idx, const Acc& acc,
                                 std::size_t begin, std::size_t end);

  /// Absorb a small flush into the open era batch (creating it if needed),
  /// extending the pool index over just the appended suffix, then seal by
  /// size/flush-count. Returns the new source index.
  std::size_t stream_append(
      StoreSourceInfo info, trace::EventBatch batch,
      const std::vector<trace::DependencyEdge>& dependencies);

  /// Re-resolve the open era's transfer-call ids and grow its name filter
  /// after an append re-interned strings, then fold the appended suffix.
  void extend_open_index(StorePool& pool, std::size_t begin, std::size_t end);

  void notify_ingest(std::size_t pool, std::size_t begin, std::size_t end);

  /// Worker threads a scan resolves to: query_threads_, or hardware
  /// concurrency when auto (0).
  [[nodiscard]] std::size_t resolved_query_threads() const;

  /// Number of contiguous pool chunks a scan will use: min(threads,
  /// pools), at least 1. Callers size per-worker partials by this.
  [[nodiscard]] std::size_t query_chunks() const;

  /// Thread budget left for intra-pool work (block-parallel decode) once
  /// the pool chunks have claimed theirs: resolved threads split across
  /// chunks, at least 1. With a single cold pool this is the whole budget,
  /// which is exactly the full-scan case block-parallel decode targets.
  [[nodiscard]] std::size_t prefetch_threads() const {
    return std::max<std::size_t>(resolved_query_threads() / query_chunks(),
                                 1);
  }

  /// Partition pools into query_chunks() contiguous chunks and run
  /// fn(chunk, begin, end) for each — in parallel when more than one chunk,
  /// else inline. The worker pool is per-call (parallel_for); queries are
  /// orders of magnitude rarer than captures, so pool spin-up has not
  /// earned resident threads here yet.
  void for_each_pool_chunk(
      const std::function<void(std::size_t, std::size_t, std::size_t)>& fn)
      const;

  /// Damage skipped by queries under ScanPolicy::skip_damaged. Atomics
  /// because parallel query chunks bump them concurrently; boxed so the
  /// store itself stays movable (callers return stores by value).
  struct DamageTally {
    std::atomic<std::uint64_t> blocks{0};
    std::atomic<std::uint64_t> records{0};
  };

  /// Record a skipped segment (const: queries are const, the tally is
  /// deliberately mutable state like the lazy block caches). Also feeds
  /// the store.query.damage_skipped_* metrics; defined out of line so the
  /// header does not pull in util/metrics.h.
  void note_damage(std::uint64_t records) const noexcept;

  std::vector<StoreSourceInfo> sources_;
  /// Storage pools in source order (each covering >= 1 source).
  std::vector<StorePool> pools_;
  std::vector<trace::DependencyEdge> dependencies_;
  long long total_events_ = 0;
  std::size_t query_threads_ = 0;  // 0 = auto
  ScanPolicy scan_policy_{};
  std::unique_ptr<DamageTally> damage_ = std::make_unique<DamageTally>();
  /// Next cold-era file number; never reset, so successive cold
  /// compactions cannot collide with era files earlier calls spilled (and
  /// still serve block-backed pools from).
  std::size_t cold_era_seq_ = 0;
  bool use_indexes_ = true;
  std::optional<StreamIngestOptions> stream_;
  bool adopt_indexes_ = true;
  IngestListener ingest_listener_;
};

}  // namespace iotaxo::analysis
