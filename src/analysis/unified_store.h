// UnifiedTraceStore — the paper's §6 future-work goal, implemented:
// "We intend to build a common framework for diverse trace aggregation.
// With such a framework, we would be able to present a single trace-data
// API to developers for use while building trace analysis tools."
//
// The store ingests bundles captured by *any* framework (ptrace text
// traces, Tracefs binary VFS streams, //TRACE interposition traces),
// normalizes timestamps onto a common timeline when skew/drift probes are
// available, and answers the queries analysis tools need: per-call
// statistics, per-rank activity, time-windowed I/O rates, and file heat.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "analysis/skew_drift.h"
#include "trace/bundle.h"

namespace iotaxo::analysis {

struct StoreSourceInfo {
  std::string framework;
  std::string application;
  long long events = 0;
  bool time_corrected = false;
};

struct CallStats {
  long long count = 0;
  SimTime total_time = 0;
  Bytes total_bytes = 0;
};

struct FileHeat {
  std::string path;
  long long ops = 0;
  Bytes bytes = 0;
};

class UnifiedTraceStore {
 public:
  /// Ingest a bundle. If it carries clock probes, a skew/drift model is
  /// fitted and all of its event timestamps are corrected onto the common
  /// timeline; otherwise node-local stamps are used as-is (flagged in the
  /// source info). Returns the source index.
  std::size_t ingest(const trace::TraceBundle& bundle);

  [[nodiscard]] const std::vector<StoreSourceInfo>& sources() const noexcept {
    return sources_;
  }
  [[nodiscard]] long long total_events() const noexcept {
    return static_cast<long long>(events_.size());
  }

  /// Per-call-name statistics across every ingested source.
  [[nodiscard]] std::map<std::string, CallStats> call_stats() const;

  /// Events of one rank in timeline order (all sources merged).
  [[nodiscard]] std::vector<const trace::TraceEvent*> rank_timeline(
      int rank) const;

  /// Bytes moved by I/O calls inside [begin, end) on the common timeline.
  [[nodiscard]] Bytes bytes_in_window(SimTime begin, SimTime end) const;

  /// I/O rate series: total bytes per fixed-width bucket across the span
  /// of ingested events. Returns (bucket start, bytes) pairs.
  [[nodiscard]] std::vector<std::pair<SimTime, Bytes>> io_rate_series(
      SimTime bucket_width) const;

  /// Hottest files by byte volume (descending), up to `limit`.
  [[nodiscard]] std::vector<FileHeat> hottest_files(std::size_t limit) const;

  /// All dependency edges across sources.
  [[nodiscard]] const std::vector<trace::DependencyEdge>& dependencies()
      const noexcept {
    return dependencies_;
  }

 private:
  struct StoredEvent {
    trace::TraceEvent event;  // local_start rewritten to timeline time
    std::size_t source = 0;
  };

  std::vector<StoreSourceInfo> sources_;
  std::vector<StoredEvent> events_;
  std::vector<trace::DependencyEdge> dependencies_;
};

}  // namespace iotaxo::analysis
