// UnifiedTraceStore — the paper's §6 future-work goal, implemented:
// "We intend to build a common framework for diverse trace aggregation.
// With such a framework, we would be able to present a single trace-data
// API to developers for use while building trace analysis tools."
//
// The store ingests bundles captured by *any* framework (ptrace text
// traces, Tracefs binary VFS streams, //TRACE interposition traces) — or
// raw EventBatches straight off the batched capture pipeline — normalizes
// timestamps onto a common timeline when skew/drift probes are available,
// and answers the queries analysis tools need: per-call statistics,
// per-rank activity, time-windowed I/O rates, and file heat.
//
// Internally each source is kept as one trace::EventBatch: fixed-size
// records plus an interned string pool. Queries iterate the flat records
// and compare interned ids instead of strings, so aggregate scans stay
// cheap at millions of events (the columnar bulk-iteration the DFG
// syscall-inspection line of work depends on).
//
// Aggregate queries (call_stats, bytes_in_window, io_rate_series,
// hottest_files) scan sources in parallel when set_query_threads allows:
// each worker chunk builds a partial and the partials are merged in source
// order, so results are bit-identical to the serial scan. Queries remain
// const and safe to issue concurrently; ingest and set_query_threads are
// configuration and must not race with them.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "analysis/skew_drift.h"
#include "trace/bundle.h"
#include "trace/event_batch.h"

namespace iotaxo::analysis {

struct StoreSourceInfo {
  std::string framework;
  std::string application;
  long long events = 0;
  bool time_corrected = false;
};

struct CallStats {
  long long count = 0;
  SimTime total_time = 0;
  Bytes total_bytes = 0;
  bool operator==(const CallStats&) const = default;
};

struct FileHeat {
  std::string path;
  long long ops = 0;
  Bytes bytes = 0;
  bool operator==(const FileHeat&) const = default;
};

class UnifiedTraceStore {
 public:
  /// Ingest a bundle. If it carries clock probes, a skew/drift model is
  /// fitted and all of its event timestamps are corrected onto the common
  /// timeline; otherwise node-local stamps are used as-is (flagged in the
  /// source info). Returns the source index.
  std::size_t ingest(const trace::TraceBundle& bundle);

  /// Ingest a capture batch directly — no per-event heap objects are
  /// rebuilt; records are re-interned into the store's source batch.
  /// `metadata` mirrors the bundle keys ("framework", "application");
  /// `clock_probes` enables timeline correction exactly as for bundles.
  std::size_t ingest(
      const trace::EventBatch& batch,
      const std::map<std::string, std::string>& metadata = {},
      const std::vector<trace::TraceEvent>& clock_probes = {},
      const std::vector<trace::DependencyEdge>& dependencies = {});

  /// Worker threads aggregate scans may use: 0 = auto (hardware
  /// concurrency), 1 = serial. Scans go parallel only when several sources
  /// are ingested; partial merges keep results identical either way.
  void set_query_threads(std::size_t threads) noexcept {
    query_threads_ = threads;
  }
  [[nodiscard]] std::size_t query_threads() const noexcept {
    return query_threads_;
  }

  [[nodiscard]] const std::vector<StoreSourceInfo>& sources() const noexcept {
    return sources_;
  }
  [[nodiscard]] long long total_events() const noexcept {
    return total_events_;
  }

  /// A source's events in normalized columnar form (local_start already on
  /// the common timeline).
  [[nodiscard]] const trace::EventBatch& source_batch(
      std::size_t source) const;

  /// Per-call-name statistics across every ingested source.
  [[nodiscard]] std::map<std::string, CallStats> call_stats() const;

  /// Events of one rank in timeline order (all sources merged),
  /// materialized for the caller.
  [[nodiscard]] std::vector<trace::TraceEvent> rank_timeline(int rank) const;

  /// Bytes moved by I/O calls inside [begin, end) on the common timeline.
  [[nodiscard]] Bytes bytes_in_window(SimTime begin, SimTime end) const;

  /// I/O rate series: total bytes per fixed-width bucket across the span
  /// of ingested events. Returns (bucket start, bytes) pairs.
  [[nodiscard]] std::vector<std::pair<SimTime, Bytes>> io_rate_series(
      SimTime bucket_width) const;

  /// Hottest files by byte volume (descending), up to `limit`.
  [[nodiscard]] std::vector<FileHeat> hottest_files(std::size_t limit) const;

  /// All dependency edges across sources.
  [[nodiscard]] const std::vector<trace::DependencyEdge>& dependencies()
      const noexcept {
    return dependencies_;
  }

 private:
  [[nodiscard]] std::optional<SkewDriftModel> fit_model(
      const std::vector<trace::TraceEvent>& clock_probes,
      StoreSourceInfo& info) const;

  /// Shared tail of both ingest overloads: timeline-correct the batch,
  /// account it, and file it as a new source.
  std::size_t ingest_source(
      StoreSourceInfo info, trace::EventBatch batch,
      const std::optional<SkewDriftModel>& model,
      const std::vector<trace::DependencyEdge>& dependencies);

  /// Number of contiguous source chunks a scan will use: min(threads,
  /// sources), at least 1. Callers size per-worker partials by this.
  [[nodiscard]] std::size_t query_chunks() const;

  /// Partition sources into query_chunks() contiguous chunks and run
  /// fn(chunk, begin, end) for each — in parallel when more than one chunk,
  /// else inline. The worker pool is per-call (parallel_for); queries are
  /// orders of magnitude rarer than captures, so pool spin-up has not
  /// earned resident threads here yet.
  void for_each_source_chunk(
      const std::function<void(std::size_t, std::size_t, std::size_t)>& fn)
      const;

  std::vector<StoreSourceInfo> sources_;
  /// One normalized batch per source (parallel to sources_).
  std::vector<trace::EventBatch> batches_;
  std::vector<trace::DependencyEdge> dependencies_;
  long long total_events_ = 0;
  std::size_t query_threads_ = 0;  // 0 = auto
};

}  // namespace iotaxo::analysis
