// Clock skew & drift estimation from LANL-Trace's pre/post barrier probe
// job (§3.1 "Accounts for time drift and skew", §4.1.1).
//
// The probe job runs once before and once after the traced application.
// Each run does: report local time, barrier, report local time again. The
// reading taken immediately *after* a barrier release is a node-local
// sample of (approximately) one common global instant, so:
//
//   skew_r  = L_pre(r)  - mean_r L_pre        (offset at the pre instant)
//   drift_r = (ΔL_r / mean_r ΔL_r - 1)        (rate error, ppm-scale)
//
// where ΔL_r = L_post(r) - L_pre(r). correct() maps a node-local timestamp
// onto the estimated common timeline, which is what replay/merge tools need.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "trace/event.h"

namespace iotaxo::analysis {

struct ClockEstimate {
  SimTime offset = 0;   // vs fleet mean at the pre instant
  double drift_ppm = 0.0;
};

class SkewDriftModel {
 public:
  /// Build the model from clock-probe events. Probes must carry labels
  /// "<phase>_sync" where phase is "pre" or "post" (the reading taken right
  /// after the barrier). Throws FormatError when a rank lacks either probe.
  [[nodiscard]] static SkewDriftModel fit(
      const std::vector<trace::TraceEvent>& probes);

  [[nodiscard]] const ClockEstimate& estimate(int rank) const;
  [[nodiscard]] int rank_count() const noexcept {
    return static_cast<int>(estimates_.size());
  }

  /// Map a node-local timestamp from `rank` onto the common timeline.
  [[nodiscard]] SimTime correct(int rank, SimTime local_time) const;

  /// Largest pairwise skew observed at the pre instant (diagnostic).
  [[nodiscard]] SimTime max_skew() const noexcept { return max_skew_; }

 private:
  std::map<int, ClockEstimate> estimates_;
  std::map<int, SimTime> pre_reading_;
  SimTime mean_pre_ = 0;
  SimTime max_skew_ = 0;
};

}  // namespace iotaxo::analysis
