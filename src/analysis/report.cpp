#include "analysis/report.h"

#include <algorithm>

#include "util/ascii_chart.h"
#include "util/strings.h"
#include "util/table.h"

namespace iotaxo::analysis {

std::string render_report(const UnifiedTraceStore& store,
                          const ReportOptions& options) {
  std::string out;
  out += "=== iotaxo trace report ===\n\n";

  out += "Sources\n-------\n";
  for (const StoreSourceInfo& src : store.sources()) {
    out += strprintf("  %-12s %-44s %8lld events%s\n", src.framework.c_str(),
                     src.application.c_str(), src.events,
                     src.time_corrected ? "  [time-corrected]" : "");
  }
  out += strprintf("  total: %lld events\n\n", store.total_events());

  // Call statistics (top by total time).
  const auto stats = store.call_stats();
  std::vector<std::pair<std::string, CallStats>> sorted(stats.begin(),
                                                        stats.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) {
              return a.second.total_time > b.second.total_time;
            });
  if (sorted.size() > options.max_calls) {
    sorted.resize(options.max_calls);
  }
  TextTable calls({"Call", "Count", "Total time", "Bytes"});
  for (std::size_t c = 1; c < 4; ++c) {
    calls.set_align(c, Align::kRight);
  }
  for (const auto& [name, s] : sorted) {
    calls.add_row({name, strprintf("%lld", s.count),
                   format_duration(s.total_time), format_bytes(s.total_bytes)});
  }
  out += "Call statistics (by total time)\n";
  out += calls.render();
  out += "\n";

  const auto hot = store.hottest_files(options.max_hot_files);
  if (!hot.empty()) {
    TextTable files({"File", "Bytes", "Ops"});
    files.set_align(1, Align::kRight);
    files.set_align(2, Align::kRight);
    for (const FileHeat& h : hot) {
      files.add_row({h.path, format_bytes(h.bytes), strprintf("%lld", h.ops)});
    }
    out += "Hottest files\n";
    out += files.render();
    out += "\n";
  }

  if (options.rate_buckets > 0 && store.total_events() > 0) {
    // Bucket width spanning the whole capture (probe with a fine series
    // first so short captures still chart).
    const auto probe = store.io_rate_series(kMillisecond);
    if (!probe.empty()) {
      const SimTime span =
          probe.back().first - probe.front().first + kMillisecond;
      const SimTime width =
          std::max<SimTime>(span / options.rate_buckets, kMillisecond);
      const auto series = store.io_rate_series(width);
      ChartSeries rate{"I/O bytes per bucket", '#', {}};
      for (const auto& [start, bytes] : series) {
        rate.values.push_back(static_cast<double>(bytes) / (1024.0 * 1024.0));
      }
      ChartOptions chart;
      chart.height = options.chart_height;
      chart.y_label = strprintf("MiB per %s bucket",
                                format_duration(width).c_str());
      chart.x_labels = {"start", "end"};
      out += "I/O rate over the capture\n";
      out += render_chart({rate}, chart);
      out += "\n";
    }
  }

  if (!store.dependencies().empty()) {
    out += strprintf("Dependencies: %zu inter-rank edges discovered\n",
                     store.dependencies().size());
    std::map<int, int> out_degree;
    for (const trace::DependencyEdge& e : store.dependencies()) {
      ++out_degree[e.from_rank];
    }
    for (const auto& [rank, degree] : out_degree) {
      out += strprintf("  rank %d -> %d edges\n", rank, degree);
    }
  }
  return out;
}

}  // namespace iotaxo::analysis
