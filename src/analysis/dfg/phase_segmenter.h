// Phase segmentation over a mined rank sequence: cut one rank's kept
// events into I/O phases and label each with its behavioral class. This is
// the DFG inspection result the Sankaran et al. line of work reads off
// syscall traces — "the application opens, then loops write/seek 400
// times, then goes metadata-heavy" — made queryable.
//
// Segmentation runs in two layers:
//  1. Gap cuts: a phase boundary wherever the inter-call gap exceeds
//     PhaseOptions::gap_threshold (0 = auto: 8x the median positive gap of
//     the rank, a robust threshold that survives one slow outlier call).
//  2. Loop detection inside each gap-delimited stretch: the segmenter
//     finds the smallest period p (<= max_loop_period) whose call-name
//     block repeats exactly at least min_loop_iterations times and emits
//     that run as one loop phase (loop_period = p, loop_iterations = k);
//     non-repeating stretches between loops become plain phases.
//
// Labels (the subsystem's phase taxonomy):
//   kMetadataHeavy — no transfer payload, or metadata ops dominate
//   kReadDominant  — reads carry >= `dominance` of the transfer bytes
//   kWriteDominant — writes carry >= `dominance`
//   kMixed         — transfers without a dominant direction
// Read vs write is classified by call name ("read"/"write" substring:
// SYS_read, MPI_File_write_at, vfs_write, ...), the naming convention all
// built-in frameworks share.
#pragma once

#include <vector>

#include "analysis/dfg/dfg.h"

namespace iotaxo::analysis::dfg {

enum class PhaseLabel {
  kMetadataHeavy,
  kReadDominant,
  kWriteDominant,
  kMixed,
};

[[nodiscard]] const char* to_string(PhaseLabel label) noexcept;

struct PhaseOptions {
  /// Inter-call gap that cuts a phase; 0 = auto (8x median positive gap).
  SimTime gap_threshold = 0;
  /// Longest repeating block (in calls) the loop detector tries.
  std::size_t max_loop_period = 16;
  /// Repetitions required before a run counts as a loop.
  long long min_loop_iterations = 2;
  /// Byte share that makes a phase read- or write-dominant.
  double dominance = 0.6;
  /// Op share with no payload that makes a phase metadata-heavy even when
  /// some transfers occur (an open/write/close loop is still a write
  /// phase: 2/3 metadata ops must not outvote the payload).
  double metadata_ratio = 0.75;
};

struct Phase {
  /// [begin, begin + count) into the rank's RankDfg::sequence.
  std::size_t begin = 0;
  std::size_t count = 0;
  SimTime start = 0;
  SimTime end = 0;
  PhaseLabel label = PhaseLabel::kMixed;
  Bytes read_bytes = 0;
  Bytes write_bytes = 0;
  long long transfer_ops = 0;
  long long metadata_ops = 0;
  /// Loop shape when the phase is a detected loop (0 / 0 otherwise).
  std::size_t loop_period = 0;
  long long loop_iterations = 0;
  bool operator==(const Phase&) const = default;
};

class PhaseSegmenter {
 public:
  /// The Dfg must have been built with DfgOptions::keep_sequences.
  explicit PhaseSegmenter(const Dfg& dfg, const PhaseOptions& options = {})
      : dfg_(&dfg), options_(options) {}

  /// Phases of one rank, in time order. Throws ConfigError when the rank
  /// has no graph or the Dfg was built without sequences.
  [[nodiscard]] std::vector<Phase> segment(int rank) const;

 private:
  const Dfg* dfg_;
  PhaseOptions options_;
};

}  // namespace iotaxo::analysis::dfg
