#include "analysis/dfg/dfg_compare.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

namespace iotaxo::analysis::dfg {

namespace {

/// Edge key by call-name strings, so distributions from different Dfgs
/// (different name tables) line up.
using NamedEdge = std::pair<std::string_view, std::string_view>;

struct EdgeCount {
  long long a = 0;
  long long b = 0;
};

[[nodiscard]] std::map<NamedEdge, long long> named_counts(
    const Dfg& dfg, const RankDfg* graph) {
  std::map<NamedEdge, long long> counts;
  if (graph != nullptr) {
    for (const auto& [key, stats] : graph->edges) {
      counts[{dfg.name(key.first), dfg.name(key.second)}] = stats.count;
    }
  }
  return counts;
}

}  // namespace

RankDelta compare_ranks(const Dfg& a, int rank_a, const Dfg& b, int rank_b,
                        const CompareOptions& options) {
  RankDelta delta;
  delta.rank_a = rank_a;
  delta.rank_b = rank_b;

  std::map<NamedEdge, EdgeCount> joined;
  for (const auto& [edge, count] : named_counts(a, a.find_rank(rank_a))) {
    joined[edge].a = count;
  }
  for (const auto& [edge, count] : named_counts(b, b.find_rank(rank_b))) {
    joined[edge].b = count;
  }
  long long total_a = 0;
  long long total_b = 0;
  for (const auto& [edge, count] : joined) {
    total_a += count.a;
    total_b += count.b;
  }

  // Borrowed views until after the truncation below — the joined union can
  // be edge-count sized, and only top_edges survivors earn owned strings.
  struct ViewDelta {
    NamedEdge edge;
    EdgeCount count;
    double divergence = 0;
  };
  std::vector<ViewDelta> deltas;
  deltas.reserve(joined.size());
  double distance = 0;
  for (const auto& [edge, count] : joined) {
    const double fa =
        total_a > 0 ? static_cast<double>(count.a) / total_a : 0.0;
    const double fb =
        total_b > 0 ? static_cast<double>(count.b) / total_b : 0.0;
    const double d = std::abs(fa - fb);
    distance += d;
    deltas.push_back({edge, count, d});
  }
  delta.divergence = distance / 2.0;
  // A mined graph against a missing/empty one is fully divergent, not
  // half: an absent rank is no distribution at all, and callers threshold
  // on 1.0 to spot missing behavior (see the header contract).
  if ((total_a == 0) != (total_b == 0)) {
    delta.divergence = 1.0;
  }
  // Descending divergence; ties break on names so the order (and thus the
  // CLI output) is deterministic.
  std::sort(deltas.begin(), deltas.end(),
            [](const ViewDelta& x, const ViewDelta& y) {
              if (x.divergence != y.divergence) {
                return x.divergence > y.divergence;
              }
              return x.edge < y.edge;
            });
  if (deltas.size() > options.top_edges) {
    deltas.resize(options.top_edges);
  }
  delta.edges.reserve(deltas.size());
  for (const ViewDelta& vd : deltas) {
    EdgeDelta ed;
    ed.from = std::string(vd.edge.first);
    ed.to = std::string(vd.edge.second);
    ed.count_a = vd.count.a;
    ed.count_b = vd.count.b;
    ed.divergence = vd.divergence;
    delta.edges.push_back(std::move(ed));
  }
  return delta;
}

DfgComparison compare_dfgs(const Dfg& a, const Dfg& b,
                           const CompareOptions& options) {
  DfgComparison out;
  for (const RankDfg& graph : a.ranks) {
    if (b.find_rank(graph.rank) == nullptr) {
      out.only_in_a.push_back(graph.rank);
    }
  }
  for (const RankDfg& graph : b.ranks) {
    if (a.find_rank(graph.rank) == nullptr) {
      out.only_in_b.push_back(graph.rank);
    }
  }
  double sum = 0;
  for (const RankDfg& graph : a.ranks) {
    if (b.find_rank(graph.rank) == nullptr) {
      continue;
    }
    out.ranks.push_back(
        compare_ranks(a, graph.rank, b, graph.rank, options));
    sum += out.ranks.back().divergence;
  }
  if (!out.ranks.empty()) {
    out.divergence = sum / static_cast<double>(out.ranks.size());
  }
  return out;
}

std::vector<int> outlier_ranks(const Dfg& dfg, double sigma) {
  if (dfg.ranks.size() < 3) {
    return {};  // no population to diverge from
  }
  // Edge frequency vectors over the shared name table (ids suffice within
  // one Dfg), then each rank's total variation distance to the centroid.
  std::map<EdgeKey, std::vector<double>> freqs;
  const std::size_t nranks = dfg.ranks.size();
  for (std::size_t r = 0; r < nranks; ++r) {
    const RankDfg& graph = dfg.ranks[r];
    const long long total = graph.transitions();
    if (total == 0) {
      continue;
    }
    for (const auto& [key, stats] : graph.edges) {
      auto [it, inserted] = freqs.try_emplace(key);
      if (inserted) {
        it->second.assign(nranks, 0.0);
      }
      it->second[r] = static_cast<double>(stats.count) / total;
    }
  }
  std::vector<double> distance(nranks, 0.0);
  for (const auto& [key, by_rank] : freqs) {
    double mean = 0;
    for (const double f : by_rank) {
      mean += f;
    }
    mean /= static_cast<double>(nranks);
    for (std::size_t r = 0; r < nranks; ++r) {
      distance[r] += std::abs(by_rank[r] - mean);
    }
  }
  for (double& d : distance) {
    d /= 2.0;
  }
  double mean = 0;
  for (const double d : distance) {
    mean += d;
  }
  mean /= static_cast<double>(nranks);
  double var = 0;
  for (const double d : distance) {
    var += (d - mean) * (d - mean);
  }
  const double stddev = std::sqrt(var / static_cast<double>(nranks));
  std::vector<int> outliers;
  if (stddev <= 0) {
    return outliers;  // all ranks equidistant: nobody is an outlier
  }
  for (std::size_t r = 0; r < nranks; ++r) {
    if (distance[r] > mean + sigma * stddev) {
      outliers.push_back(dfg.ranks[r].rank);
    }
  }
  return outliers;
}

}  // namespace iotaxo::analysis::dfg
