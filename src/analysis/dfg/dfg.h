// Directly-follows-graph (DFG) mining over the unified store — the
// pattern-analysis workload class the syscall-inspection line of work
// (Sankaran et al.) builds on: for each rank, a graph whose nodes are call
// names and whose edges count "call B directly follows call A", annotated
// with transition-latency statistics and byte weights. Where the store's
// aggregate queries answer "how much", a DFG answers "in what order" —
// I/O phases, loops, and per-rank behavioral divergence that flat
// aggregates cannot expose.
//
// Graphs are mined straight off the store's pools through the public
// accessor seam (BatchAccess / ViewAccess): owned batches and zero-copy
// IOTB2 views feed identical graphs, and nothing is materialized. Node and
// edge keys are interned call-name ids in the Dfg's own name table
// (`names`), assigned in sorted-name order (id 0 stays ""), so graph
// comparisons are id compares — and the table is independent of how the
// records were split into pools.
//
// Directly-follows semantics: within one rank, events are taken in store
// order — pool (== source) order, record order within a pool — which is
// capture order for every built-in pipeline. Only I/O call classes
// (syscall, library call, VFS op) participate; clock probes, annotations
// and rank-less records (rank < 0) are skipped. A rank that spans several
// pools is stitched across the boundary (the last kept event of pool k
// transitions into the first kept event of pool k+1), so graphs are
// invariant to how the same record stream is split into sources — and to
// compact().
#pragma once

#include <algorithm>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "analysis/unified_store.h"
#include "trace/string_pool.h"

namespace iotaxo::analysis::dfg {

/// Per-node (call-name) statistics of one rank's graph.
struct NodeStats {
  long long count = 0;           // occurrences of this call
  SimTime total_duration = 0;    // summed call durations
  Bytes bytes = 0;               // payload moved by this call (transfers)
  bool operator==(const NodeStats&) const = default;
};

/// Per-edge statistics: "to" directly followed "from" `count` times. The
/// gap is the inter-call latency, next.start - prev.end (negative when
/// calls overlap); bytes weight the edge with the destination call's
/// payload, so transfer-heavy transitions stand out in exports.
struct EdgeStats {
  long long count = 0;
  Bytes bytes = 0;
  SimTime gap_min = 0;
  SimTime gap_max = 0;
  SimTime gap_sum = 0;
  [[nodiscard]] SimTime gap_mean() const noexcept {
    return count > 0 ? gap_sum / count : 0;
  }
  bool operator==(const EdgeStats&) const = default;
};

/// One kept event of a rank's sequence (name is a Dfg-global id). Retained
/// only when DfgOptions::keep_sequences — the phase segmenter needs the
/// sequence, the graph alone does not.
struct SeqEvent {
  trace::StrId name = 0;
  SimTime start = 0;
  SimTime end = 0;  // start + duration
  Bytes bytes = 0;
  bool operator==(const SeqEvent&) const = default;
};

/// Edge key: (from node, to node) as Dfg-global name ids.
using EdgeKey = std::pair<trace::StrId, trace::StrId>;

/// Fold one directly-follows transition into an edge. Shared by the cold
/// builder and the live maintainer so the two fold paths cannot drift —
/// bit-identity between snapshot() and build() rests on this being the
/// single place a transition turns into stats.
inline void add_transition(EdgeStats& edge, SimTime gap, Bytes bytes) {
  if (edge.count == 0) {
    edge.gap_min = edge.gap_max = gap;
  } else {
    edge.gap_min = std::min(edge.gap_min, gap);
    edge.gap_max = std::max(edge.gap_max, gap);
  }
  edge.gap_sum += gap;
  ++edge.count;
  edge.bytes += bytes;
}

struct RankDfg {
  int rank = -1;
  std::map<trace::StrId, NodeStats> nodes;
  std::map<EdgeKey, EdgeStats> edges;
  /// Kept events in directly-follows order (empty unless keep_sequences).
  std::vector<SeqEvent> sequence;

  /// Total transitions (== sum of edge counts == kept events - 1).
  [[nodiscard]] long long transitions() const noexcept {
    long long total = 0;
    for (const auto& [key, stats] : edges) {
      total += stats.count;
    }
    return total;
  }
  bool operator==(const RankDfg&) const = default;
};

/// The mined graph set: one RankDfg per rank (ascending), sharing one name
/// table. Equality is structural — the build is deterministic (serial ==
/// parallel, owned == view, pre- == post-compaction), so tests and benches
/// compare whole graphs with ==.
struct Dfg {
  /// Global name table: id -> call name (id 0 is "", never used by a node).
  std::vector<std::string> names;
  std::vector<RankDfg> ranks;

  [[nodiscard]] std::string_view name(trace::StrId id) const {
    return names.at(id);
  }
  /// The rank's graph, or nullptr when the rank has no kept events.
  [[nodiscard]] const RankDfg* find_rank(int rank) const noexcept {
    for (const RankDfg& r : ranks) {
      if (r.rank == rank) {
        return &r;
      }
    }
    return nullptr;
  }
  [[nodiscard]] long long total_events() const noexcept {
    long long total = 0;
    for (const RankDfg& r : ranks) {
      for (const auto& [id, stats] : r.nodes) {
        total += stats.count;
      }
    }
    return total;
  }
  bool operator==(const Dfg&) const = default;
};

struct DfgOptions {
  /// Worker threads for the per-pool partial phase: 0 = auto (hardware
  /// concurrency), 1 = serial — the same knob semantics as
  /// UnifiedTraceStore::set_query_threads. The merge is always serial and
  /// in pool order, so results are identical for every setting.
  std::size_t threads = 0;
  /// Restrict mining to one rank (the CLI's --rank).
  std::optional<int> rank;
  /// Retain per-rank event sequences (required by PhaseSegmenter; off by
  /// default to keep graph-only mining at ~node+edge memory).
  bool keep_sequences = false;
};

/// Mines DFGs from a UnifiedTraceStore without materializing its sources:
/// each pool is streamed once through the store's accessor seam into a
/// pool-local partial graph (parallel across pools when options.threads
/// allows), then partials are merged into Dfg-global ids in pool order
/// with rank boundaries stitched — bit-identical results at any thread
/// count. The store must not be mutated (ingest/compact) during build().
class DfgBuilder {
 public:
  explicit DfgBuilder(const UnifiedTraceStore& store) : store_(&store) {}

  [[nodiscard]] Dfg build(const DfgOptions& options = {}) const;

 private:
  const UnifiedTraceStore* store_;
};

/// Re-key a graph onto ids assigned in sorted-name order (id 0 stays "").
/// Intern-time ids depend on the order names were first seen — pool
/// chunking for the cold builder, record order for the live maintainer —
/// so every producer canonicalizes before comparing or returning a Dfg.
void canonicalize(Dfg& dfg);

}  // namespace iotaxo::analysis::dfg
