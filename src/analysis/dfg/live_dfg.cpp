#include "analysis/dfg/live_dfg.h"

#include "util/metrics.h"

namespace iotaxo::analysis::dfg {

LiveDfg::LiveDfg(UnifiedTraceStore& store, const LiveDfgOptions& options)
    : store_(&store), options_(options), names_{""} {
  name_index_.emplace("", 0);
  // Catch up on everything already filed, pool by pool in store order —
  // the same order the cold builder's serial merge walks.
  const std::size_t npools = store.pool_count();
  for (std::size_t p = 0; p < npools; ++p) {
    std::size_t n = 0;
    store.with_pool_access(p, [&](const auto& acc) { n = acc.size(); });
    on_records(p, 0, n);
  }
  store.set_ingest_listener([this](std::size_t pool, std::size_t begin,
                                   std::size_t end) {
    on_records(pool, begin, end);
  });
}

LiveDfg::~LiveDfg() { store_->set_ingest_listener({}); }

trace::StrId LiveDfg::intern(std::string_view s) {
  const auto it = name_index_.find(std::string(s));
  if (it != name_index_.end()) {
    return it->second;
  }
  const auto id = static_cast<trace::StrId>(names_.size());
  names_.emplace_back(s);
  name_index_.emplace(names_.back(), id);
  return id;
}

void LiveDfg::on_records(std::size_t pool, std::size_t begin,
                         std::size_t end) {
  if (begin == end) {
    return;
  }
  static obs::Counter& merges = obs::counter("dfg.incremental_merges");
  const std::lock_guard<std::mutex> lock(mu_);
  store_->with_pool_access(pool, [&](const auto& acc) {
    // Pool-local -> live-global id cache, valid for this range only (an
    // open era re-interns ids as it absorbs flushes). 0 doubles as "not
    // cached": local 0 is always "" which interns to global 0 anyway.
    std::vector<trace::StrId> remap(acc.string_count(), 0);
    for (std::size_t i = begin; i < end; ++i) {
      const auto& rec = acc.record(i);
      if (!rec.is_io_call() || rec.rank < 0) {
        continue;  // probes, annotations, rank-less bookkeeping
      }
      if (options_.rank.has_value() && rec.rank != *options_.rank) {
        continue;
      }
      trace::StrId g = remap[rec.name];
      if (g == 0 && rec.name != 0) {
        g = intern(acc.string(rec.name));
        remap[rec.name] = g;
      }
      SeqEvent ev;
      ev.name = g;
      ev.start = rec.local_start;
      ev.end = rec.local_start + rec.duration;
      ev.bytes = rec.bytes > 0 ? rec.bytes : 0;
      RankDfg& graph = ranks_[rec.rank];
      graph.rank = rec.rank;
      NodeStats& node = graph.nodes[g];
      ++node.count;
      node.total_duration += rec.duration;
      node.bytes += ev.bytes;
      const auto carried = last_by_rank_.find(rec.rank);
      if (carried != last_by_rank_.end()) {
        add_transition(graph.edges[{carried->second.name, g}],
                       ev.start - carried->second.end, ev.bytes);
        carried->second = ev;
      } else {
        last_by_rank_.emplace(rec.rank, ev);
      }
      if (options_.keep_sequences) {
        graph.sequence.push_back(ev);
      }
      ++folded_;
    }
  });
  merges.add(1);
}

Dfg LiveDfg::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  Dfg out;
  out.names = names_;
  out.ranks.reserve(ranks_.size());
  for (const auto& [rank, graph] : ranks_) {
    out.ranks.push_back(graph);
  }
  canonicalize(out);
  return out;
}

long long LiveDfg::events_folded() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return folded_;
}

std::unique_ptr<LiveDfg> set_live_dfg(UnifiedTraceStore& store,
                                      const LiveDfgOptions& options) {
  return std::make_unique<LiveDfg>(store, options);
}

}  // namespace iotaxo::analysis::dfg
