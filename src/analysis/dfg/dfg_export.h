// DFG serialization: Graphviz DOT for eyeballs, JSON for tools. Schemas
// are documented in src/analysis/dfg/README.md; both renderings are
// deterministic (node/edge order follows the canonical sorted name ids),
// so exports of equal graphs are byte-equal.
#pragma once

#include <optional>
#include <string>

#include "analysis/dfg/dfg.h"

namespace iotaxo::analysis::dfg {

struct ExportOptions {
  /// Restrict the export to one rank (all mined ranks otherwise).
  std::optional<int> rank;
};

/// Graphviz DOT: one cluster subgraph per rank; node labels carry call
/// counts and transfer bytes, edge labels carry transition counts, byte
/// weights and mean gaps, with pen width scaled by relative edge count.
[[nodiscard]] std::string to_dot(const Dfg& dfg,
                                 const ExportOptions& options = {});

/// JSON document with the name table inlined into nodes/edges (schema in
/// README.md).
[[nodiscard]] std::string to_json(const Dfg& dfg,
                                  const ExportOptions& options = {});

}  // namespace iotaxo::analysis::dfg
