#include "analysis/dfg/dfg.h"

#include <algorithm>
#include <thread>
#include <unordered_map>

#include "util/thread_pool.h"

namespace iotaxo::analysis::dfg {

namespace {

/// One pool's contribution, keyed by *pool-local* string ids: built in
/// isolation (so pools can run in parallel), remapped to Dfg-global ids by
/// the serial merge. first/last are kept regardless of keep_sequences —
/// the merge stitches them across pool boundaries.
struct RankPartial {
  bool any = false;
  SeqEvent first;
  SeqEvent last;
  std::map<trace::StrId, NodeStats> nodes;
  std::map<EdgeKey, EdgeStats> edges;
  std::vector<SeqEvent> sequence;
};

struct PoolPartial {
  std::map<int, RankPartial> ranks;
};

void merge_edge(EdgeStats& into, const EdgeStats& from) {
  if (from.count == 0) {
    return;
  }
  if (into.count == 0) {
    into.gap_min = from.gap_min;
    into.gap_max = from.gap_max;
  } else {
    into.gap_min = std::min(into.gap_min, from.gap_min);
    into.gap_max = std::max(into.gap_max, from.gap_max);
  }
  into.count += from.count;
  into.bytes += from.bytes;
  into.gap_sum += from.gap_sum;
}

/// Stream one pool through the store's accessor seam into a partial.
/// `prefetch_threads` is the intra-pool decode budget left over once the
/// pool-level chunking has claimed its workers.
[[nodiscard]] PoolPartial build_pool_partial(const UnifiedTraceStore& store,
                                             std::size_t pool,
                                             const DfgOptions& options,
                                             std::size_t prefetch_threads) {
  PoolPartial partial;
  const bool use_indexes = store.use_indexes();
  store.with_pool_access(pool, [&](const auto& acc) {
    // Fold one kept event into the rank's accumulating partial. Shared by
    // the materialized-record and hot-column loops so the two paths cannot
    // drift.
    const auto fold = [&](int rank, SimTime duration, const SeqEvent& ev) {
      RankPartial& rp = partial.ranks[rank];
      NodeStats& node = rp.nodes[ev.name];
      ++node.count;
      node.total_duration += duration;
      node.bytes += ev.bytes;
      if (rp.any) {
        add_transition(rp.edges[{rp.last.name, ev.name}],
                       ev.start - rp.last.end, ev.bytes);
      } else {
        rp.first = ev;
        rp.any = true;
      }
      rp.last = ev;
      if (options.keep_sequences) {
        rp.sequence.push_back(ev);
      }
    };
    const std::size_t segments = acc.segment_count();
    std::vector<std::size_t> touched;
    touched.reserve(segments);
    for (std::size_t k = 0; k < segments; ++k) {
      // Every event the miner keeps is an I/O call, so a segment whose
      // index says "no I/O call" contributes nothing — for block-backed
      // pools that skip leaves the block compressed on disk.
      if (use_indexes && !acc.segment_has_io_call(k)) {
        continue;
      }
      if (acc.segment_begin(k) != acc.segment_end(k)) {
        touched.push_back(k);
      }
    }
    // The miner reads cls/name/rank/start/duration/bytes — exactly the hot
    // column group — so projected pools decode only hot bytes, in parallel.
    acc.segment_prefetch(touched, prefetch_threads, /*hot_only=*/true);
    for (const std::size_t k : touched) {
      const std::size_t seg_begin = acc.segment_begin(k);
      const std::size_t seg_end = acc.segment_end(k);
      const std::uint8_t* hot = acc.segment_hot_bytes(k);
      if (hot != nullptr) {
        for (std::size_t i = 0; i < seg_end - seg_begin; ++i) {
          const trace::HotRecordView rec(hot +
                                         i * trace::hotlayout::kStride);
          if (!rec.is_io_call() || rec.rank() < 0) {
            continue;  // probes, annotations, rank-less bookkeeping
          }
          if (options.rank.has_value() && rec.rank() != *options.rank) {
            continue;
          }
          SeqEvent ev;
          ev.name = rec.name();  // pool-local id; the merge remaps it
          ev.start = rec.local_start();
          ev.end = rec.local_start() + rec.duration();
          ev.bytes = rec.bytes() > 0 ? rec.bytes() : 0;
          fold(rec.rank(), rec.duration(), ev);
        }
        continue;
      }
      for (std::size_t i = seg_begin; i < seg_end; ++i) {
        const auto& rec = acc.record(i);
        if (!rec.is_io_call() || rec.rank < 0) {
          continue;  // probes, annotations, rank-less bookkeeping
        }
        if (options.rank.has_value() && rec.rank != *options.rank) {
          continue;
        }
        SeqEvent ev;
        ev.name = rec.name;  // pool-local id; the merge remaps it
        ev.start = rec.local_start;
        ev.end = rec.local_start + rec.duration;
        ev.bytes = rec.bytes > 0 ? rec.bytes : 0;
        fold(rec.rank, rec.duration, ev);
      }
    }
  });
  return partial;
}

/// Interns Dfg-global name ids during the merge. Owns copies of the pool
/// strings (pool tables use per-pool ids that cannot be shared).
class NameTable {
 public:
  NameTable() : names_{""} { index_.emplace("", 0); }

  [[nodiscard]] trace::StrId intern(std::string_view s) {
    const auto it = index_.find(std::string(s));
    if (it != index_.end()) {
      return it->second;
    }
    const auto id = static_cast<trace::StrId>(names_.size());
    names_.emplace_back(s);
    index_.emplace(names_.back(), id);
    return id;
  }

  [[nodiscard]] std::vector<std::string> take() { return std::move(names_); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, trace::StrId> index_;
};

}  // namespace

/// Re-key the graph onto ids assigned in sorted-name order. Merge-time ids
/// are handed out first-seen, which depends on how records are split into
/// pools (or, for the live maintainer, record order); sorting detaches the
/// table from intern order so graphs mined from the same events are
/// identical (==) across ingest splits, view vs owned sources, compact(),
/// and live vs cold builds.
void canonicalize(Dfg& dfg) {
  std::vector<trace::StrId> order(dfg.names.size());
  for (trace::StrId id = 0; id < order.size(); ++id) {
    order[id] = id;
  }
  // Id 0 stays the empty string; everything else sorts by name.
  std::sort(order.begin() + 1, order.end(),
            [&](trace::StrId a, trace::StrId b) {
              return dfg.names[a] < dfg.names[b];
            });
  std::vector<trace::StrId> remap(dfg.names.size(), 0);
  std::vector<std::string> sorted_names(dfg.names.size());
  for (trace::StrId pos = 0; pos < order.size(); ++pos) {
    remap[order[pos]] = pos;
    sorted_names[pos] = std::move(dfg.names[order[pos]]);
  }
  dfg.names = std::move(sorted_names);
  for (RankDfg& graph : dfg.ranks) {
    std::map<trace::StrId, NodeStats> nodes;
    for (const auto& [id, stats] : graph.nodes) {
      nodes.emplace(remap[id], stats);
    }
    graph.nodes = std::move(nodes);
    std::map<EdgeKey, EdgeStats> edges;
    for (const auto& [key, stats] : graph.edges) {
      edges.emplace(EdgeKey{remap[key.first], remap[key.second]}, stats);
    }
    graph.edges = std::move(edges);
    for (SeqEvent& ev : graph.sequence) {
      ev.name = remap[ev.name];
    }
  }
}

Dfg DfgBuilder::build(const DfgOptions& options) const {
  const UnifiedTraceStore& store = *store_;
  const std::size_t npools = store.pool_count();

  // --- phase 1: per-pool partials, embarrassingly parallel ---------------
  std::vector<PoolPartial> partials(npools);
  const std::size_t threads =
      options.threads == 0
          ? std::max(1u, std::thread::hardware_concurrency())
          : options.threads;
  const std::size_t chunks = std::max<std::size_t>(
      std::min(threads, npools), 1);
  // Threads not consumed by pool-level chunking go to block-parallel
  // decode inside each pool (the single-big-cold-pool case).
  const std::size_t pf_threads = std::max<std::size_t>(threads / chunks, 1);
  const auto build_chunk = [&](std::size_t c) {
    const std::size_t begin = npools * c / chunks;
    const std::size_t end = npools * (c + 1) / chunks;
    for (std::size_t p = begin; p < end; ++p) {
      partials[p] = build_pool_partial(store, p, options, pf_threads);
    }
  };
  if (chunks <= 1) {
    build_chunk(0);
  } else {
    parallel_for(chunks, build_chunk, chunks);
  }

  // --- phase 2: serial merge in pool (== source) order -------------------
  // Global ids are interned first-seen over pools in order, so the table —
  // like the graphs — is identical no matter how phase 1 was chunked, and
  // invariant to pool boundaries (ingest splits, compact() merges).
  NameTable names;
  std::map<int, RankDfg> merged;          // rank -> accumulating graph
  std::map<int, SeqEvent> last_by_rank;   // global-id boundary state
  for (std::size_t p = 0; p < npools; ++p) {
    PoolPartial& partial = partials[p];
    // Lazy pool-local -> global remap table, shared by this pool's ranks.
    std::vector<trace::StrId> remap;
    store.with_pool_access(p, [&](const auto& acc) {
      remap.assign(acc.string_count(), 0);
      for (auto& [rank, rp] : partial.ranks) {
        for (const auto& [local, stats] : rp.nodes) {
          if (remap[local] == 0) {
            remap[local] = names.intern(acc.string(local));
          }
        }
      }
    });
    for (auto& [rank, rp] : partial.ranks) {
      if (!rp.any) {
        continue;
      }
      RankDfg& graph = merged[rank];
      graph.rank = rank;
      for (const auto& [local, stats] : rp.nodes) {
        NodeStats& node = graph.nodes[remap[local]];
        node.count += stats.count;
        node.total_duration += stats.total_duration;
        node.bytes += stats.bytes;
      }
      for (const auto& [key, stats] : rp.edges) {
        merge_edge(graph.edges[{remap[key.first], remap[key.second]}], stats);
      }
      // Stitch the pool boundary: the rank's previous pool tail directly
      // precedes this pool's head, exactly as a single concatenated pool
      // would have counted it.
      const auto carried = last_by_rank.find(rank);
      if (carried != last_by_rank.end()) {
        add_transition(
            graph.edges[{carried->second.name, remap[rp.first.name]}],
            rp.first.start - carried->second.end, rp.first.bytes);
      }
      SeqEvent tail = rp.last;
      tail.name = remap[tail.name];
      last_by_rank[rank] = tail;
      if (options.keep_sequences) {
        graph.sequence.reserve(graph.sequence.size() + rp.sequence.size());
        for (SeqEvent ev : rp.sequence) {
          ev.name = remap[ev.name];
          graph.sequence.push_back(ev);
        }
      }
    }
  }

  Dfg out;
  out.names = names.take();
  out.ranks.reserve(merged.size());
  for (auto& [rank, graph] : merged) {
    out.ranks.push_back(std::move(graph));
  }
  canonicalize(out);
  return out;
}

}  // namespace iotaxo::analysis::dfg
