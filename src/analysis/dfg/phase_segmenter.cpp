#include "analysis/dfg/phase_segmenter.h"

#include <algorithm>
#include <string_view>

#include "util/error.h"

namespace iotaxo::analysis::dfg {

namespace {

enum class Direction { kRead, kWrite, kOther };

[[nodiscard]] Direction direction_of(std::string_view name) noexcept {
  if (name.find("write") != std::string_view::npos ||
      name.find("Write") != std::string_view::npos) {
    return Direction::kWrite;
  }
  if (name.find("read") != std::string_view::npos ||
      name.find("Read") != std::string_view::npos) {
    return Direction::kRead;
  }
  return Direction::kOther;
}

/// 8x the median positive inter-call gap: loops run at a steady small gap,
/// phase boundaries sit an order of magnitude out, and the median ignores
/// a single slow straggler that would wreck a mean-based cut.
[[nodiscard]] SimTime auto_threshold(const std::vector<SeqEvent>& seq) {
  std::vector<SimTime> gaps;
  gaps.reserve(seq.size());
  for (std::size_t i = 1; i < seq.size(); ++i) {
    const SimTime gap = seq[i].start - seq[i - 1].end;
    if (gap > 0) {
      gaps.push_back(gap);
    }
  }
  if (gaps.empty()) {
    return 0;  // back-to-back calls only: nothing to cut on
  }
  const auto mid = gaps.begin() + static_cast<std::ptrdiff_t>(gaps.size() / 2);
  std::nth_element(gaps.begin(), mid, gaps.end());
  return *mid * 8;
}

/// Number of exact repetitions of the p-length block starting at `begin`,
/// staying inside [begin, end). Names only — byte sizes may vary between
/// iterations of the same loop.
[[nodiscard]] long long repetitions(const std::vector<SeqEvent>& seq,
                                    std::size_t begin, std::size_t end,
                                    std::size_t p) {
  long long k = 1;
  std::size_t at = begin + p;
  while (at + p <= end) {
    bool match = true;
    for (std::size_t j = 0; j < p; ++j) {
      if (seq[at + j].name != seq[begin + j].name) {
        match = false;
        break;
      }
    }
    if (!match) {
      break;
    }
    ++k;
    at += p;
  }
  return k;
}

/// Smallest period whose block repeats >= min_iterations from `begin`;
/// 0 when none does.
[[nodiscard]] std::size_t loop_period_at(const std::vector<SeqEvent>& seq,
                                         std::size_t begin, std::size_t end,
                                         const PhaseOptions& options,
                                         long long* iterations) {
  for (std::size_t p = 1; p <= options.max_loop_period; ++p) {
    if (begin + 2 * p > end) {
      break;
    }
    const long long k = repetitions(seq, begin, end, p);
    if (k >= options.min_loop_iterations) {
      *iterations = k;
      return p;
    }
  }
  return 0;
}

}  // namespace

const char* to_string(PhaseLabel label) noexcept {
  switch (label) {
    case PhaseLabel::kMetadataHeavy:
      return "metadata-heavy";
    case PhaseLabel::kReadDominant:
      return "read-dominant";
    case PhaseLabel::kWriteDominant:
      return "write-dominant";
    case PhaseLabel::kMixed:
      return "mixed";
  }
  return "?";
}

std::vector<Phase> PhaseSegmenter::segment(int rank) const {
  const RankDfg* graph = dfg_->find_rank(rank);
  if (graph == nullptr) {
    throw ConfigError("phase segmenter: rank has no mined graph");
  }
  const std::vector<SeqEvent>& seq = graph->sequence;
  if (seq.empty()) {
    throw ConfigError(
        "phase segmenter: the Dfg was built without sequences "
        "(set DfgOptions::keep_sequences)");
  }

  const SimTime threshold = options_.gap_threshold > 0
                                ? options_.gap_threshold
                                : auto_threshold(seq);

  std::vector<Phase> phases;
  const auto finish = [&](std::size_t begin, std::size_t end,
                          std::size_t loop_period, long long iterations) {
    Phase phase;
    phase.begin = begin;
    phase.count = end - begin;
    phase.start = seq[begin].start;
    phase.end = seq[end - 1].end;
    phase.loop_period = loop_period;
    phase.loop_iterations = iterations;
    for (std::size_t i = begin; i < end; ++i) {
      const SeqEvent& ev = seq[i];
      if (ev.bytes > 0) {
        ++phase.transfer_ops;
        switch (direction_of(dfg_->name(ev.name))) {
          case Direction::kRead:
            phase.read_bytes += ev.bytes;
            break;
          case Direction::kWrite:
            phase.write_bytes += ev.bytes;
            break;
          case Direction::kOther:
            break;
        }
      } else {
        ++phase.metadata_ops;
      }
    }
    const Bytes transfer = phase.read_bytes + phase.write_bytes;
    const auto count = static_cast<double>(phase.count);
    if (phase.transfer_ops == 0 || transfer == 0) {
      phase.label = PhaseLabel::kMetadataHeavy;
    } else if (static_cast<double>(phase.metadata_ops) >=
               options_.metadata_ratio * count) {
      phase.label = PhaseLabel::kMetadataHeavy;
    } else {
      const double read_share =
          static_cast<double>(phase.read_bytes) / static_cast<double>(transfer);
      if (read_share >= options_.dominance) {
        phase.label = PhaseLabel::kReadDominant;
      } else if (1.0 - read_share >= options_.dominance) {
        phase.label = PhaseLabel::kWriteDominant;
      } else {
        phase.label = PhaseLabel::kMixed;
      }
    }
    phases.push_back(phase);
  };

  // Gap-delimited stretches, then greedy loop runs inside each: at every
  // position try for a loop; events before the next loop start become a
  // plain phase.
  std::size_t seg_begin = 0;
  for (std::size_t i = 1; i <= seq.size(); ++i) {
    const bool cut = i == seq.size() ||
                     (threshold > 0 && seq[i].start - seq[i - 1].end > threshold);
    if (!cut) {
      continue;
    }
    const std::size_t seg_end = i;
    std::size_t at = seg_begin;
    std::size_t plain_begin = seg_begin;
    while (at < seg_end) {
      long long iterations = 0;
      const std::size_t p =
          loop_period_at(seq, at, seg_end, options_, &iterations);
      if (p == 0) {
        ++at;
        continue;
      }
      if (plain_begin < at) {
        finish(plain_begin, at, 0, 0);
      }
      const std::size_t run = p * static_cast<std::size_t>(iterations);
      finish(at, at + run, p, iterations);
      at += run;
      plain_begin = at;
    }
    if (plain_begin < seg_end) {
      finish(plain_begin, seg_end, 0, 0);
    }
    seg_begin = seg_end;
  }
  return phases;
}

}  // namespace iotaxo::analysis::dfg
