// Incremental DFG maintenance over a streaming UnifiedTraceStore.
//
// The cold path (DfgBuilder) rescans every pool on each build() — fine for
// post-hoc analysis, wasteful when a monitoring loop wants the graph after
// every flush of a long capture session. LiveDfg hangs off the store's
// ingest-listener seam and folds each filed record range into per-rank
// partial graphs as it arrives, so snapshot() is a copy + canonicalize of
// already-folded state instead of a full rescan.
//
// Bit-identity with the cold builder is a hard invariant, not an
// approximation: both paths keep records in store order per rank, share
// the single add_transition() fold in dfg.h, and both canonicalize onto
// sorted-name ids before returning — so
//   live.snapshot() == DfgBuilder(store).build(equivalent options)
// holds exactly (operator==), at any thread count, for any interleaving
// of flushes, era seals, and compact() calls. compact() rewrites pool
// boundaries but not the record stream, and LiveDfg's state is keyed by
// rank, not pool, so no re-fold is needed.
//
// Opt-in: construct via set_live_dfg(store). The returned handle owns the
// listener registration and detaches on destruction; destroy it before
// the store. Folding happens synchronously inside the ingest call, under
// the maintainer's own mutex — snapshot() is safe from other threads.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/dfg/dfg.h"

namespace iotaxo::analysis::dfg {

struct LiveDfgOptions {
  /// Restrict maintenance to one rank (mirrors DfgOptions::rank).
  std::optional<int> rank;
  /// Retain per-rank event sequences (mirrors DfgOptions::keep_sequences).
  bool keep_sequences = false;
};

class LiveDfg {
 public:
  /// Registers as the store's ingest listener and folds all records the
  /// store already holds, so a maintainer attached mid-session still
  /// matches a cold rebuild. Replaces any previously set listener.
  LiveDfg(UnifiedTraceStore& store, const LiveDfgOptions& options);
  ~LiveDfg();

  LiveDfg(const LiveDfg&) = delete;
  LiveDfg& operator=(const LiveDfg&) = delete;

  /// The graph over everything folded so far, canonicalized — comparable
  /// with == against DfgBuilder::build over the same store.
  [[nodiscard]] Dfg snapshot() const;

  /// Records folded so far (after class/rank filtering).
  [[nodiscard]] long long events_folded() const;

 private:
  void on_records(std::size_t pool, std::size_t begin, std::size_t end);
  [[nodiscard]] trace::StrId intern(std::string_view s);

  UnifiedTraceStore* store_;
  LiveDfgOptions options_;
  mutable std::mutex mu_;
  /// Live intern table: first-seen record order. snapshot() re-keys onto
  /// sorted-name order, so this order never leaks into results.
  std::vector<std::string> names_;
  std::unordered_map<std::string, trace::StrId> name_index_;
  std::map<int, RankDfg> ranks_;
  std::map<int, SeqEvent> last_by_rank_;
  long long folded_ = 0;
};

/// Attach incremental DFG maintenance to a store (the opt-in entry point).
[[nodiscard]] std::unique_ptr<LiveDfg> set_live_dfg(
    UnifiedTraceStore& store, const LiveDfgOptions& options = {});

}  // namespace iotaxo::analysis::dfg
