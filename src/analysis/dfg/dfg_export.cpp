#include "analysis/dfg/dfg_export.h"

#include <algorithm>

#include "util/strings.h"

namespace iotaxo::analysis::dfg {

namespace {

/// Minimal escaping shared by DOT (double-quoted strings) and JSON: call
/// names are tracer-printed identifiers, but a hostile container could
/// intern anything.
[[nodiscard]] std::string escaped(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += strprintf("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

[[nodiscard]] bool selected(const ExportOptions& options,
                            const RankDfg& graph) noexcept {
  return !options.rank.has_value() || graph.rank == *options.rank;
}

}  // namespace

std::string to_dot(const Dfg& dfg, const ExportOptions& options) {
  std::string out = "digraph dfg {\n  rankdir=LR;\n  node [shape=box];\n";
  for (const RankDfg& graph : dfg.ranks) {
    if (!selected(options, graph)) {
      continue;
    }
    long long max_edge = 1;
    for (const auto& [key, stats] : graph.edges) {
      max_edge = std::max(max_edge, stats.count);
    }
    out += strprintf("  subgraph cluster_rank_%d {\n    label=\"rank %d\";\n",
                     graph.rank, graph.rank);
    for (const auto& [id, stats] : graph.nodes) {
      out += strprintf("    r%d_n%u [label=\"%s\\n%lld calls",
                       graph.rank, id,
                       escaped(dfg.name(id)).c_str(), stats.count);
      if (stats.bytes > 0) {
        out += strprintf(", %s", format_bytes(stats.bytes).c_str());
      }
      out += "\"];\n";
    }
    for (const auto& [key, stats] : graph.edges) {
      const double rel = static_cast<double>(stats.count) /
                         static_cast<double>(max_edge);
      out += strprintf("    r%d_n%u -> r%d_n%u [label=\"%lldx",
                       graph.rank, key.first, graph.rank, key.second,
                       stats.count);
      if (stats.bytes > 0) {
        out += strprintf(", %s", format_bytes(stats.bytes).c_str());
      }
      out += strprintf(", gap %s\" penwidth=%.1f];\n",
                       format_duration(stats.gap_mean()).c_str(),
                       1.0 + 4.0 * rel);
    }
    out += "  }\n";
  }
  out += "}\n";
  return out;
}

std::string to_json(const Dfg& dfg, const ExportOptions& options) {
  std::string out = "{\n  \"ranks\": [";
  bool first_rank = true;
  for (const RankDfg& graph : dfg.ranks) {
    if (!selected(options, graph)) {
      continue;
    }
    out += first_rank ? "\n" : ",\n";
    first_rank = false;
    out += strprintf("    {\n      \"rank\": %d,\n      \"transitions\": "
                     "%lld,\n      \"nodes\": [",
                     graph.rank, graph.transitions());
    bool first = true;
    for (const auto& [id, stats] : graph.nodes) {
      out += first ? "\n" : ",\n";
      first = false;
      out += strprintf(
          "        {\"name\": \"%s\", \"count\": %lld, "
          "\"total_duration_ns\": %lld, \"bytes\": %lld}",
          escaped(dfg.name(id)).c_str(), stats.count,
          static_cast<long long>(stats.total_duration),
          static_cast<long long>(stats.bytes));
    }
    out += "\n      ],\n      \"edges\": [";
    first = true;
    for (const auto& [key, stats] : graph.edges) {
      out += first ? "\n" : ",\n";
      first = false;
      out += strprintf(
          "        {\"from\": \"%s\", \"to\": \"%s\", \"count\": %lld, "
          "\"bytes\": %lld, \"gap_min_ns\": %lld, \"gap_mean_ns\": %lld, "
          "\"gap_max_ns\": %lld}",
          escaped(dfg.name(key.first)).c_str(),
          escaped(dfg.name(key.second)).c_str(), stats.count,
          static_cast<long long>(stats.bytes),
          static_cast<long long>(stats.gap_min),
          static_cast<long long>(stats.gap_mean()),
          static_cast<long long>(stats.gap_max));
    }
    out += "\n      ]\n    }";
  }
  out += "\n  ]\n}\n";
  return out;
}

}  // namespace iotaxo::analysis::dfg
