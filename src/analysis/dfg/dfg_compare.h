// Graph diffing — the per-rank pattern comparison that is the workhorse of
// parallel-I/O diagnosis (Recorder-style): are all ranks doing the same
// thing, and if not, which one diverges and on which transitions?
//
// Graphs are compared as *edge frequency distributions*: each rank graph
// becomes a vector of transition frequencies (edge count / total
// transitions), and divergence is the total variation distance
// 0.5 * sum |f_a - f_b| in [0, 1] — 0 for identical transition structure
// (regardless of absolute event counts), 1 for disjoint edge sets. Edges
// are matched by call-name strings, so graphs from different runs (with
// different name tables) compare correctly.
#pragma once

#include <string>
#include <vector>

#include "analysis/dfg/dfg.h"

namespace iotaxo::analysis::dfg {

/// One edge's contribution to a divergence score.
struct EdgeDelta {
  std::string from;
  std::string to;
  long long count_a = 0;
  long long count_b = 0;
  /// |freq_a - freq_b| for this edge (sums to 2x the rank divergence).
  double divergence = 0;
};

struct RankDelta {
  int rank_a = -1;
  int rank_b = -1;
  /// Total variation distance between the two edge distributions, [0, 1].
  double divergence = 0;
  /// Most-diverging edges, descending, up to CompareOptions::top_edges.
  std::vector<EdgeDelta> edges;
};

struct CompareOptions {
  /// Edge deltas retained per rank pair (the full union can be large).
  std::size_t top_edges = 8;
};

/// Diff one rank's graph against another's (same Dfg or different runs).
/// A rank with no mined graph (or no transitions) scores divergence 1
/// against any non-empty graph — missing behavior is fully divergent —
/// and 0 against another empty one.
[[nodiscard]] RankDelta compare_ranks(const Dfg& a, int rank_a, const Dfg& b,
                                      int rank_b,
                                      const CompareOptions& options = {});

/// Run-vs-run diff: ranks are paired by id; ranks present on only one side
/// are listed, not scored.
struct DfgComparison {
  /// Mean divergence over the paired ranks (0 when none pair up).
  double divergence = 0;
  std::vector<RankDelta> ranks;
  std::vector<int> only_in_a;
  std::vector<int> only_in_b;
};
[[nodiscard]] DfgComparison compare_dfgs(const Dfg& a, const Dfg& b,
                                         const CompareOptions& options = {});

/// Behavioral outliers within one run: each rank's distance to the mean
/// edge-frequency vector of all ranks, flagged when it exceeds
/// mean + `sigma` standard deviations. Empty when every rank behaves alike
/// (zero spread) or fewer than three ranks were mined.
[[nodiscard]] std::vector<int> outlier_ranks(const Dfg& dfg,
                                             double sigma = 2.0);

}  // namespace iotaxo::analysis::dfg
