#include "analysis/bandwidth.h"

#include "util/error.h"

namespace iotaxo::analysis {

double elapsed_time_overhead(SimTime traced, SimTime untraced) noexcept {
  if (untraced <= 0) {
    return 0.0;
  }
  return static_cast<double>(traced - untraced) /
         static_cast<double>(untraced);
}

double bandwidth_mibps(Bytes bytes, SimTime window) noexcept {
  if (window <= 0) {
    return 0.0;
  }
  return static_cast<double>(bytes) / (1024.0 * 1024.0) / to_seconds(window);
}

double bandwidth_overhead(double bw_untraced, double bw_traced) noexcept {
  if (bw_traced <= 0.0) {
    return 0.0;
  }
  return bw_untraced / bw_traced - 1.0;
}

SimTime io_window(const mpi::RunResult& run) {
  const auto begin = run.barrier_release.find("io_begin");
  const auto end = run.barrier_release.find("io_end");
  if (begin == run.barrier_release.end() || end == run.barrier_release.end()) {
    throw FormatError("run has no io_begin/io_end barrier labels");
  }
  return end->second - begin->second;
}

double io_phase_bandwidth_mibps(const mpi::RunResult& run) {
  return bandwidth_mibps(run.bytes_written + run.bytes_read, io_window(run));
}

}  // namespace iotaxo::analysis
