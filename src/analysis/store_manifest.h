// Per-directory commit record for crash-safe store directories.
//
// Every directory the cold tier spills eras into carries a
// `MANIFEST.iotm` listing exactly the containers that are *committed*:
// written in full, fsync'd, and renamed into place. The manifest itself
// is written with the same tmp + fsync + atomic-rename protocol
// (trace::write_binary_file), and its rename is the commit point — a
// crash anywhere earlier leaves the previous manifest (and therefore the
// previous committed set) intact.
//
// Binary layout (all integers LE):
//   magic     "IOTM1\n"                        6 bytes
//   next_seq  u64    next unused era sequence number
//   nfiles    u32
//   entries   nfiles x:
//     name    u32 len + bytes   file name within the directory
//     size    u64               committed byte size
//     crc     u32               CRC-32 of the full file bytes
//     seq     u64               era sequence number
//   crc       u32    CRC-32 of everything above
//
// Recovery (UnifiedTraceStore::attach_dir, `iotaxo fsck`) trusts the
// manifest over the directory listing: entries that still match their
// recorded size + CRC are served, everything else is quarantined.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace iotaxo::analysis {

inline constexpr std::string_view kManifestFileName = "MANIFEST.iotm";

struct ManifestEntry {
  std::string name;  // file name within the directory, no path components
  std::uint64_t size = 0;
  std::uint32_t crc = 0;  // CRC-32 of the full committed file bytes
  std::uint64_t seq = 0;  // era sequence number
  bool operator==(const ManifestEntry&) const = default;
};

struct StoreManifest {
  /// The next era sequence number a writer may use: max committed seq + 1.
  std::uint64_t next_seq = 0;
  std::vector<ManifestEntry> entries;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  /// Throws FormatError on bad magic, truncation or a CRC mismatch.
  [[nodiscard]] static StoreManifest decode(
      std::span<const std::uint8_t> data);

  /// Read `<directory>/MANIFEST.iotm`. nullopt when the file does not
  /// exist; FormatError when it exists but is corrupt.
  [[nodiscard]] static std::optional<StoreManifest> load(
      const std::string& directory);
  /// Durably write `<directory>/MANIFEST.iotm` via write_binary_file
  /// (failpoint prefix "store.manifest").
  void store(const std::string& directory) const;

  [[nodiscard]] const ManifestEntry* find(std::string_view name) const;

  bool operator==(const StoreManifest&) const = default;
};

}  // namespace iotaxo::analysis
