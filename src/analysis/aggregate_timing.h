// Aggregate timing output: the second block of Figure 1. For each labelled
// barrier it reports, per rank, the node-local enter and exit times —
// "designed to allow analysis and replay tools to account for time drift
// and skew amongst the distributed clocks".
#pragma once

#include <string>
#include <vector>

#include "trace/event.h"

namespace iotaxo::analysis {

/// Render barrier enter/exit lines grouped by barrier, in LANL-Trace's
/// format:
///   # Barrier before /mpi_io_test.exe "-type" "1" ...
///   7: host13.lanl.gov (10378) Entered barrier at 1159808385.170918
///   7: host13.lanl.gov (10378) Exited barrier at 1159808385.173167
[[nodiscard]] std::string render_aggregate_timing(
    const std::vector<trace::TraceEvent>& barrier_events,
    const std::string& cmdline);

}  // namespace iotaxo::analysis
