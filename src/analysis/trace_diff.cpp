#include "analysis/trace_diff.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/strings.h"

namespace iotaxo::analysis {

std::string FidelityReport::summary() const {
  return strprintf(
      "runtime_error=%s op_mix_error=%s byte_ratio=%.3f sequence_error=%s",
      format_pct(runtime_error).c_str(), format_pct(op_mix_error).c_str(),
      byte_ratio, format_pct(sequence_error).c_str());
}

double sequence_similarity(const std::vector<std::string>& a,
                           const std::vector<std::string>& b) {
  if (a.empty() && b.empty()) {
    return 1.0;
  }
  if (a.empty() || b.empty()) {
    return 0.0;
  }
  // Cap cost on huge traces by sampling evenly down to <= 512 elements.
  auto sample = [](const std::vector<std::string>& v) {
    constexpr std::size_t kMax = 512;
    if (v.size() <= kMax) {
      return v;
    }
    std::vector<std::string> out;
    out.reserve(kMax);
    for (std::size_t i = 0; i < kMax; ++i) {
      out.push_back(v[i * v.size() / kMax]);
    }
    return out;
  };
  const std::vector<std::string> sa = sample(a);
  const std::vector<std::string> sb = sample(b);

  // Classic LCS DP with rolling rows.
  std::vector<std::size_t> prev(sb.size() + 1, 0);
  std::vector<std::size_t> cur(sb.size() + 1, 0);
  for (std::size_t i = 1; i <= sa.size(); ++i) {
    for (std::size_t j = 1; j <= sb.size(); ++j) {
      if (sa[i - 1] == sb[j - 1]) {
        cur[j] = prev[j - 1] + 1;
      } else {
        cur[j] = std::max(prev[j], cur[j - 1]);
      }
    }
    std::swap(prev, cur);
  }
  const std::size_t lcs = prev[sb.size()];
  return static_cast<double>(lcs) /
         static_cast<double>(std::max(sa.size(), sb.size()));
}

namespace {

std::map<std::string, long long> io_histogram(const trace::TraceBundle& b) {
  std::map<std::string, long long> h;
  for (const auto& [name, entry] : b.call_summary) {
    // Compare I/O call mix only; barrier counts depend on sync strategy.
    if (name != "MPI_Barrier" && name != "MPI_Send" && name != "MPI_Recv" &&
        name != "clock_probe") {
      h[name] += entry.count;
    }
  }
  return h;
}

Bytes io_bytes(const trace::TraceBundle& b) {
  Bytes total = 0;
  for (const trace::RankStream& rs : b.ranks) {
    for (const trace::TraceEvent& ev : rs.events) {
      if (ev.cls == trace::EventClass::kSyscall &&
          (ev.name == "SYS_write" || ev.name == "SYS_read")) {
        total += ev.bytes;
      }
    }
  }
  return total;
}

}  // namespace

FidelityReport compare_traces(const trace::TraceBundle& original,
                              const trace::TraceBundle& replay,
                              SimTime original_elapsed,
                              SimTime replay_elapsed) {
  FidelityReport report;
  if (original_elapsed > 0) {
    report.runtime_error =
        std::abs(to_seconds(replay_elapsed) - to_seconds(original_elapsed)) /
        to_seconds(original_elapsed);
  }

  const auto ho = io_histogram(original);
  const auto hr = io_histogram(replay);
  long long total = 0;
  long long delta = 0;
  for (const auto& [name, count] : ho) {
    total += count;
    const auto it = hr.find(name);
    delta += std::abs(count - (it == hr.end() ? 0 : it->second));
  }
  for (const auto& [name, count] : hr) {
    if (!ho.contains(name)) {
      delta += count;
    }
  }
  report.op_mix_error =
      total > 0 ? static_cast<double>(delta) / static_cast<double>(total) : 0.0;

  const Bytes bo = io_bytes(original);
  const Bytes br = io_bytes(replay);
  report.byte_ratio =
      bo > 0 ? static_cast<double>(br) / static_cast<double>(bo) : 1.0;

  // Sequence error averaged over ranks present in both bundles.
  double seq_sum = 0.0;
  int seq_n = 0;
  for (const trace::RankStream& ro : original.ranks) {
    const trace::RankStream* rr = nullptr;
    for (const trace::RankStream& cand : replay.ranks) {
      if (cand.rank == ro.rank) {
        rr = &cand;
        break;
      }
    }
    if (rr == nullptr) {
      continue;
    }
    auto names = [](const trace::RankStream& rs) {
      std::vector<std::string> out;
      out.reserve(rs.events.size());
      for (const trace::TraceEvent& ev : rs.events) {
        if (ev.is_io_call()) {
          out.push_back(ev.name);
        }
      }
      return out;
    };
    seq_sum += 1.0 - sequence_similarity(names(ro), names(*rr));
    ++seq_n;
  }
  report.sequence_error = seq_n > 0 ? seq_sum / seq_n : 0.0;
  return report;
}

}  // namespace iotaxo::analysis
