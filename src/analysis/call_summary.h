// Call-summary rendering: the third output block of Figure 1
// ("SUMMARY COUNT OF TRACED CALL(S)").
#pragma once

#include <map>
#include <string>

#include "trace/bundle.h"

namespace iotaxo::analysis {

/// Render the per-call count/total-time table in LANL-Trace's format.
[[nodiscard]] std::string render_call_summary(
    const std::map<std::string, trace::SummarySink::Entry>& summary);

[[nodiscard]] inline std::string render_call_summary(
    const trace::TraceBundle& bundle) {
  return render_call_summary(bundle.call_summary);
}

/// Total time attributed to one call name (0 when absent).
[[nodiscard]] SimTime total_time_of(const trace::TraceBundle& bundle,
                                    const std::string& call_name);

}  // namespace iotaxo::analysis
