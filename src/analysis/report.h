// Full-trace report generation: one human-readable document summarizing
// everything the toolkit knows about a set of ingested traces — sources,
// call statistics, hottest files, I/O rate over time (ASCII chart), and
// discovered dependencies. This is the "constructive use of the trace data
// collected" the taxonomy's Analysis-tools feature asks about (§3.1).
#pragma once

#include <string>

#include "analysis/unified_store.h"

namespace iotaxo::analysis {

struct ReportOptions {
  std::size_t max_hot_files = 8;
  std::size_t max_calls = 24;
  /// Buckets for the I/O-rate chart; <= 0 disables the chart.
  int rate_buckets = 48;
  int chart_height = 10;
};

/// Render the report for everything in the store.
[[nodiscard]] std::string render_report(const UnifiedTraceStore& store,
                                        const ReportOptions& options = {});

}  // namespace iotaxo::analysis
