#include "analysis/unified_store.h"

#include <algorithm>
#include <filesystem>
#include <set>
#include <thread>

#include "analysis/store_manifest.h"
#include "trace/scan_kernels.h"
#include "util/crc32.h"
#include "util/error.h"
#include "util/failpoint.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/thread_pool.h"

namespace iotaxo::analysis {

namespace {

/// Handles bound once; every record call is one relaxed load when metrics
/// are disarmed (util/metrics.h). Segment/pool counts are added once per
/// pool per query, never per record, so the armed cost stays off the
/// scan loops.
struct StoreMetrics {
  obs::Counter& queries = obs::counter("store.query.count");
  obs::Counter& pools_skipped = obs::counter("store.query.pools_skipped");
  obs::Counter& segments_scanned = obs::counter("store.query.segments_scanned");
  obs::Counter& segments_skipped = obs::counter("store.query.segments_skipped");
  obs::Counter& damage_blocks = obs::counter("store.query.damage_skipped_blocks");
  obs::Counter& damage_records = obs::counter("store.query.damage_skipped_records");
  obs::Histogram& call_stats_ns = obs::histogram("store.query.call_stats_ns");
  obs::Histogram& rank_timeline_ns = obs::histogram("store.query.rank_timeline_ns");
  obs::Histogram& bytes_in_window_ns = obs::histogram("store.query.bytes_in_window_ns");
  obs::Histogram& io_rate_series_ns = obs::histogram("store.query.io_rate_series_ns");
  obs::Histogram& hottest_files_ns = obs::histogram("store.query.hottest_files_ns");
  obs::Counter& compact_calls = obs::counter("store.compact.calls");
  obs::Counter& eras_spilled = obs::counter("store.compact.eras_spilled");
  obs::Counter& compact_bytes = obs::counter("store.compact.bytes_written");
  obs::Counter& manifest_commits = obs::counter("store.compact.manifest_commits");
  obs::Histogram& spill_ns = obs::histogram("store.compact.spill_ns");
  obs::Histogram& attach_ns = obs::histogram("store.attach.duration_ns");
  obs::Counter& attach_recovered = obs::counter("store.attach.recovered_eras");
  obs::Counter& attach_quarantined = obs::counter("store.attach.quarantined");
  obs::Counter& attach_torn_tmps = obs::counter("store.attach.torn_tmps_removed");
  obs::Counter& ingest_flushes = obs::counter("ingest.flushes");
  obs::Counter& ingest_events = obs::counter("ingest.events");
  obs::Counter& era_seals = obs::counter("ingest.era_seals");
  obs::Counter& index_adopted = obs::counter("ingest.index_adopted");
  obs::Counter& index_rebuilt = obs::counter("ingest.index_rebuilt");
  obs::Counter& attach_index_adopted = obs::counter("attach.index_adopted");
};

StoreMetrics& metrics() {
  static StoreMetrics m;
  return m;
}

// Queries dispatch each pool onto the public accessor seam declared in
// unified_store.h (BatchAccess over an owned EventBatch, ViewAccess over a
// zero-copy BatchView, BlockAccess over a lazily-decoded IOTB3 BlockView)
// exactly once, so the per-record loops below stay monomorphized. Scans
// walk the accessor's *segments* (whole pool for owned/view pools, one per
// block for block-backed pools): each segment carries skip predicates from
// its index and, when the records are serialized, raw fixed-stride bytes
// the SIMD scan kernels run over.

template <class Fn>
decltype(auto) with_access(const trace::EventBatch& batch,
                           const std::optional<trace::BatchView>& view,
                           const std::optional<trace::BlockView>& blocks,
                           Fn&& fn) {
  if (blocks.has_value()) {
    return fn(BlockAccess{&*blocks});
  }
  if (view.has_value()) {
    return fn(ViewAccess{&*view});
  }
  return fn(BatchAccess{&batch});
}

/// Transfer-syscall test against the pool's cached ids (PoolIndex); id 0
/// (the empty string) marks "not interned in this pool" because no event
/// has an empty name.
[[nodiscard]] bool is_transfer(const trace::EventRecord& rec,
                               trace::StrId sys_write,
                               trace::StrId sys_read) noexcept {
  return rec.cls == trace::EventClass::kSyscall &&
         ((sys_write != 0 && rec.name == sys_write) ||
          (sys_read != 0 && rec.name == sys_read));
}

[[nodiscard]] StoreSourceInfo parse_source_info(
    const std::map<std::string, std::string>& metadata) {
  StoreSourceInfo info;
  const auto framework_it = metadata.find("framework");
  info.framework =
      framework_it == metadata.end() ? "(unknown)" : framework_it->second;
  const auto app_it = metadata.find("application");
  info.application = app_it == metadata.end() ? "(unknown)" : app_it->second;
  return info;
}

/// Rewrite one record's local_start onto the common timeline; ranks the
/// probe set does not cover keep their raw stamps.
void correct_record(trace::EventBatch& batch, std::size_t i,
                    const SkewDriftModel& model) {
  const trace::EventRecord& rec = batch.record(i);
  if (rec.rank < 0) {
    return;
  }
  try {
    batch.set_local_start(i, model.correct(rec.rank, rec.local_start));
  } catch (const Error&) {
    // rank missing from the probe set; keep the raw stamp
  }
}

/// Approximate resident footprint of an owned pool — the quantity
/// compact() sizes eras by.
[[nodiscard]] std::size_t approx_batch_bytes(const trace::EventBatch& batch) {
  // O(1): the seal check runs once per streamed flush, so this must not
  // walk records or the string pool.
  return batch.size() * sizeof(trace::EventRecord) +
         batch.arg_ids().size() * sizeof(trace::StrId) +
         batch.pool().byte_size();
}

}  // namespace

void UnifiedTraceStore::index_pool(StorePool& pool) {
  PoolIndex idx;
  if (pool.blocks.has_value()) {
    // Block-backed pools are indexed from the footer mini-index alone: the
    // per-block min/max stamps, flag bits and name bitmaps OR together into
    // the pool-level facts, so ingesting (or cold-compacting to) an IOTB3
    // container never decompresses a record block.
    const trace::BlockView& v = *pool.blocks;
    idx.sys_write_id = v.find_string("SYS_write").value_or(0);
    idx.sys_read_id = v.find_string("SYS_read").value_or(0);
    idx.name_present.assign(v.string_count(), false);
    const std::size_t nblocks = v.block_count();
    for (std::size_t b = 0; b < nblocks; ++b) {
      if (!idx.any) {
        idx.min_time = v.block_min_time(b);
        idx.max_time = v.block_max_time(b);
        idx.any = true;
      } else {
        idx.min_time = std::min(idx.min_time, v.block_min_time(b));
        idx.max_time = std::max(idx.max_time, v.block_max_time(b));
      }
      idx.has_fd_path = idx.has_fd_path || v.block_has_fd_path(b);
      idx.has_io_bytes = idx.has_io_bytes || v.block_has_io_bytes(b);
      for (trace::StrId id = 1; id < idx.name_present.size(); ++id) {
        if (!idx.name_present[id] && v.block_has_name(b, id)) {
          idx.name_present[id] = true;
        }
      }
    }
    pool.index = std::move(idx);
    return;
  }
  if (pool.view.has_value() && adopt_indexes_ &&
      pool.view->persisted_index().has_value()) {
    // The container carries a validated v2 footer: adopt it instead of
    // scanning records. find_string_unchecked keeps the deferred payload
    // CRC deferred (the table was structurally validated at open); the
    // footer's own CRC already vouched for the index bits.
    const trace::PoolIndexFooter& f = *pool.view->persisted_index();
    idx.any = f.any;
    idx.min_time = f.min_time;
    idx.max_time = f.max_time;
    idx.has_fd_path = f.has_fd_path;
    idx.has_io_bytes = f.has_io_bytes;
    idx.sys_write_id =
        pool.view->find_string_unchecked("SYS_write").value_or(0);
    idx.sys_read_id = pool.view->find_string_unchecked("SYS_read").value_or(0);
    idx.name_present.assign(pool.view->string_count(), false);
    for (trace::StrId id = 1; id < idx.name_present.size(); ++id) {
      if (f.has_name(id)) {
        idx.name_present[id] = true;
      }
    }
    pool.persisted_index = true;
    metrics().index_adopted.add(1);
    pool.index = std::move(idx);
    return;
  }
  if (pool.view.has_value()) {
    // A v2 view pool that could have carried a footer gets the full scan.
    metrics().index_rebuilt.add(1);
  }
  with_access(pool.batch, pool.view, pool.blocks, [&idx](const auto& acc) {
    idx.sys_write_id = acc.find("SYS_write").value_or(0);
    idx.sys_read_id = acc.find("SYS_read").value_or(0);
    idx.name_present.assign(acc.string_count(), false);
    fold_index_records(idx, acc, 0, acc.size());
  });
  pool.index = std::move(idx);
}

template <class Acc>
void UnifiedTraceStore::fold_index_records(PoolIndex& idx, const Acc& acc,
                                           std::size_t begin,
                                           std::size_t end) {
  for (std::size_t i = begin; i < end; ++i) {
    const auto& rec = acc.record(i);
    idx.name_present[rec.name] = true;
    if (!idx.any) {
      idx.min_time = idx.max_time = rec.local_start;
      idx.any = true;
    } else {
      idx.min_time = std::min(idx.min_time, rec.local_start);
      idx.max_time = std::max(idx.max_time, rec.local_start);
    }
    if (rec.path != 0 && rec.fd >= 0) {
      idx.has_fd_path = true;
    }
    if (rec.is_io_call() && rec.bytes > 0) {
      idx.has_io_bytes = true;
    }
  }
}

std::optional<SkewDriftModel> UnifiedTraceStore::fit_model(
    const std::vector<trace::TraceEvent>& clock_probes,
    StoreSourceInfo& info) const {
  if (clock_probes.empty()) {
    return std::nullopt;
  }
  try {
    SkewDriftModel model = SkewDriftModel::fit(clock_probes);
    info.time_corrected = true;
    return model;
  } catch (const Error&) {
    return std::nullopt;  // incomplete probe sets: fall back to raw stamps
  }
}

std::size_t UnifiedTraceStore::ingest_source(
    StoreSourceInfo info, trace::EventBatch batch,
    const std::optional<SkewDriftModel>& model,
    const std::vector<trace::DependencyEdge>& dependencies) {
  if (model.has_value()) {
    for (std::size_t i = 0; i < batch.size(); ++i) {
      correct_record(batch, i, *model);
    }
  }
  metrics().ingest_flushes.add(1);
  metrics().ingest_events.add(batch.size());
  if (stream_.has_value() && batch.size() <= stream_->flush_events) {
    return stream_append(std::move(info), std::move(batch), dependencies);
  }
  // Any non-absorbing ingest closes the open era first, so it stays the
  // last pool and pool order stays source order.
  seal_open_era();
  info.events = static_cast<long long>(batch.size());
  total_events_ += info.events;
  dependencies_.insert(dependencies_.end(), dependencies.begin(),
                       dependencies.end());
  const std::size_t source_index = sources_.size();
  sources_.push_back(std::move(info));
  StorePool pool;
  pool.batch = std::move(batch);
  pool.first_source = source_index;
  index_pool(pool);
  pools_.push_back(std::move(pool));
  notify_ingest(pools_.size() - 1, 0, pools_.back().batch.size());
  return source_index;
}

std::size_t UnifiedTraceStore::stream_append(
    StoreSourceInfo info, trace::EventBatch batch,
    const std::vector<trace::DependencyEdge>& dependencies) {
  info.events = static_cast<long long>(batch.size());
  total_events_ += info.events;
  dependencies_.insert(dependencies_.end(), dependencies.begin(),
                       dependencies.end());
  const std::size_t source_index = sources_.size();
  sources_.push_back(std::move(info));
  if (pools_.empty() || !pools_.back().open) {
    StorePool pool;
    pool.batch = std::move(batch);
    pool.first_source = source_index;
    pool.open = true;
    pool.flushes = 1;
    index_pool(pool);
    pools_.push_back(std::move(pool));
    notify_ingest(pools_.size() - 1, 0, pools_.back().batch.size());
  } else {
    // Appending re-interns string ids, exactly as compact() merging these
    // pools later would have — which is why era-ingested stores answer
    // every query bit-identically to one-pool-per-flush stores.
    StorePool& pool = pools_.back();
    const std::size_t old_size = pool.batch.size();
    pool.batch.append(batch);
    pool.source_count += 1;
    pool.flushes += 1;
    extend_open_index(pool, old_size, pool.batch.size());
    notify_ingest(pools_.size() - 1, old_size, pool.batch.size());
  }
  const StorePool& era = pools_.back();
  if (approx_batch_bytes(era.batch) >= stream_->era_bytes ||
      (stream_->era_flushes != 0 && era.flushes >= stream_->era_flushes)) {
    seal_open_era();
  }
  return source_index;
}

void UnifiedTraceStore::extend_open_index(StorePool& pool, std::size_t begin,
                                          std::size_t end) {
  PoolIndex& idx = pool.index;
  // The append re-interned: the transfer calls may have just (re)appeared
  // and the string table may have grown. StringPool::find is a hash
  // lookup, so this stays O(appended records), never a rescan.
  idx.sys_write_id = pool.batch.pool().find("SYS_write").value_or(0);
  idx.sys_read_id = pool.batch.pool().find("SYS_read").value_or(0);
  if (idx.name_present.size() < pool.batch.pool().size()) {
    idx.name_present.resize(pool.batch.pool().size(), false);
  }
  fold_index_records(idx, BatchAccess{&pool.batch}, begin, end);
}

bool UnifiedTraceStore::seal_open_era() {
  if (pools_.empty() || !pools_.back().open) {
    return false;
  }
  pools_.back().open = false;
  metrics().era_seals.add(1);
  return true;
}

void UnifiedTraceStore::notify_ingest(std::size_t pool, std::size_t begin,
                                      std::size_t end) {
  if (ingest_listener_ && begin != end) {
    ingest_listener_(pool, begin, end);
  }
}

std::size_t UnifiedTraceStore::ingest(const trace::TraceBundle& bundle) {
  StoreSourceInfo info = parse_source_info(bundle.metadata);
  const std::optional<SkewDriftModel> model =
      fit_model(bundle.clock_probes, info);

  trace::EventBatch batch;
  for (const trace::RankStream& rs : bundle.ranks) {
    for (const trace::TraceEvent& ev : rs.events) {
      batch.append(ev);
    }
  }
  return ingest_source(std::move(info), std::move(batch), model,
                       bundle.dependencies);
}

std::size_t UnifiedTraceStore::ingest(
    const trace::EventBatch& batch,
    const std::map<std::string, std::string>& metadata,
    const std::vector<trace::TraceEvent>& clock_probes,
    const std::vector<trace::DependencyEdge>& dependencies) {
  StoreSourceInfo info = parse_source_info(metadata);
  const std::optional<SkewDriftModel> model = fit_model(clock_probes, info);

  trace::EventBatch stored;
  stored.append(batch);  // re-intern into the store's own pool
  return ingest_source(std::move(info), std::move(stored), model,
                       dependencies);
}

std::size_t UnifiedTraceStore::ingest_view(
    trace::MappedTraceFile file,
    const std::map<std::string, std::string>& metadata,
    const std::optional<CipherKey>& key) {
  // The views borrow the mapped bytes; MappedTraceFile guarantees they do
  // not relocate when the file object itself is moved into the pool.
  const trace::BinaryHeader header = trace::peek_binary_header(file.bytes());
  if (header.version == 3) {
    trace::BlockView view(file.bytes(), key);
    return ingest_view(std::move(file), std::move(view), metadata);
  }
  trace::BatchView view(file.bytes());
  return ingest_view(std::move(file), std::move(view), metadata);
}

std::size_t UnifiedTraceStore::ingest_view(
    trace::MappedTraceFile file, trace::BatchView view,
    const std::map<std::string, std::string>& metadata) {
  const std::span<const std::uint8_t> bytes = file.bytes();
  if (view.buffer().data() != bytes.data() ||
      view.buffer().size() != bytes.size()) {
    throw ConfigError(
        "unified store: the view does not borrow the given mapped file");
  }
  metrics().ingest_flushes.add(1);
  metrics().ingest_events.add(view.size());
  if (stream_.has_value() && view.size() <= stream_->flush_events) {
    // A small flush while streaming: materialize it into the open era
    // (decoding verifies the CRC) and drop the mapped file — tens of
    // thousands of tiny capture flushes must not pin tens of thousands of
    // mappings.
    trace::EventBatch batch = trace::decode_binary_batch(bytes);
    return stream_append(parse_source_info(metadata), std::move(batch), {});
  }
  seal_open_era();
  StorePool pool;
  pool.view.emplace(std::move(view));
  pool.file = std::move(file);

  StoreSourceInfo info = parse_source_info(metadata);
  info.events = static_cast<long long>(pool.view->size());
  info.view_backed = true;
  total_events_ += info.events;

  const std::size_t source_index = sources_.size();
  pool.first_source = source_index;
  index_pool(pool);
  sources_.push_back(std::move(info));
  pools_.push_back(std::move(pool));
  notify_ingest(pools_.size() - 1, 0,
                static_cast<std::size_t>(sources_.back().events));
  return source_index;
}

std::size_t UnifiedTraceStore::ingest_view(
    trace::MappedTraceFile file, trace::BlockView view,
    const std::map<std::string, std::string>& metadata) {
  const std::span<const std::uint8_t> bytes = file.bytes();
  if (view.buffer().data() != bytes.data() ||
      view.buffer().size() != bytes.size()) {
    throw ConfigError(
        "unified store: the view does not borrow the given mapped file");
  }
  metrics().ingest_flushes.add(1);
  metrics().ingest_events.add(view.size());
  if (stream_.has_value() && view.size() <= stream_->flush_events) {
    trace::EventBatch batch = view.to_batch();
    return stream_append(parse_source_info(metadata), std::move(batch), {});
  }
  seal_open_era();
  StorePool pool;
  pool.blocks.emplace(std::move(view));
  pool.file = std::move(file);

  StoreSourceInfo info = parse_source_info(metadata);
  info.events = static_cast<long long>(pool.blocks->size());
  info.view_backed = true;
  total_events_ += info.events;

  const std::size_t source_index = sources_.size();
  pool.first_source = source_index;
  index_pool(pool);
  sources_.push_back(std::move(info));
  pools_.push_back(std::move(pool));
  notify_ingest(pools_.size() - 1, 0,
                static_cast<std::size_t>(sources_.back().events));
  return source_index;
}

std::size_t UnifiedTraceStore::ingest_view(
    const std::string& path,
    const std::map<std::string, std::string>& metadata,
    const std::optional<CipherKey>& key) {
  // When index adoption is on, the open usually touches only the header,
  // string table, and footer pages — don't prefault the record pages. A
  // footer-less (or corrupt-footer) container still scans fine; the pages
  // just fault in on demand.
  return ingest_view(trace::MappedTraceFile(path, /*prefault=*/!adopt_indexes_),
                     metadata, key);
}

std::size_t UnifiedTraceStore::compact(std::size_t era_bytes) {
  metrics().compact_calls.add(1);
  // Compaction is an era boundary: the open era is sealed and becomes an
  // ordinary merge candidate (the cold overload inherits this via the
  // delegation below).
  seal_open_era();
  std::vector<StorePool> merged;
  merged.reserve(pools_.size());
  std::size_t i = 0;
  while (i < pools_.size()) {
    StorePool era = std::move(pools_[i]);
    ++i;
    if (era.view.has_value() || era.blocks.has_value()) {
      merged.push_back(std::move(era));  // views are never re-materialized
      continue;
    }
    std::size_t era_size = approx_batch_bytes(era.batch);
    bool grew = false;
    while (i < pools_.size() && !pools_[i].view.has_value() &&
           !pools_[i].blocks.has_value()) {
      const std::size_t next = approx_batch_bytes(pools_[i].batch);
      if (era_size + next > era_bytes) {
        break;
      }
      // Record order within the era stays source order, so every query
      // (including hottest_files' cross-source fd carryover fold) sees
      // exactly the records the uncompacted pools would have produced.
      era.batch.append(pools_[i].batch);
      era.source_count += pools_[i].source_count;
      era_size += next;
      grew = true;
      ++i;
    }
    if (grew) {
      index_pool(era);  // ids were re-interned; rebuild the presence filter
    }
    merged.push_back(std::move(era));
  }
  pools_ = std::move(merged);
  return pools_.size();
}

std::size_t UnifiedTraceStore::compact(std::size_t era_bytes,
                                       const ColdTierOptions& cold) {
  compact(era_bytes);
  // The directory's commit record: load it up front so era numbering
  // continues past everything already committed there (by this store, an
  // earlier incarnation, or another writer using the same directory).
  StoreManifest manifest =
      StoreManifest::load(cold.directory).value_or(StoreManifest{});
  cold_era_seq_ = std::max(cold_era_seq_,
                           static_cast<std::size_t>(manifest.next_seq));
  for (StorePool& pool : pools_) {
    if (pool.view.has_value() || pool.blocks.has_value()) {
      continue;  // already cold (or zero-copy ingested)
    }
    fail::point("store.cold.spill");
    // Covers the whole spill: encode, durable write, manifest commit and
    // the swap onto the mapped container.
    const obs::ScopedTimer spill_timer(metrics().spill_ns);
    const std::vector<std::uint8_t> container =
        trace::encode_binary_v3(pool.batch, cold.binary, cold.block_records);
    // Era numbers come from a store-lifetime counter, never per-call: an
    // earlier compaction's era file may still back a live block pool's
    // mmap, and truncating it would SIGBUS every query on that pool.
    const std::uint64_t seq = cold_era_seq_;
    const std::string name =
        cold.file_prefix + "-" + std::to_string(seq) + ".iotb3";
    const std::string path = cold.directory + "/" + name;
    if (std::filesystem::exists(path)) {
      throw IoError("unified store: cold era '" + path +
                    "' already exists; refusing to overwrite");
    }
    // Durable era first (tmp + fsync + atomic rename + dirsync), then the
    // manifest through the same protocol. The manifest rename is the
    // commit point: a crash anywhere earlier leaves at worst a torn .tmp
    // (deleted by recovery) or an uncommitted era file (quarantined, never
    // served) — the previously committed state is untouched either way.
    trace::write_binary_file(path, container, "store.cold");
    ++cold_era_seq_;
    manifest.entries.push_back({name, container.size(),
                                crc32(std::span<const std::uint8_t>(
                                    container.data(), container.size())),
                                seq});
    manifest.next_seq = cold_era_seq_;
    fail::point("store.manifest.update");
    manifest.store(cold.directory);
    metrics().eras_spilled.add(1);
    metrics().compact_bytes.add(container.size());
    metrics().manifest_commits.add(1);
    trace::MappedTraceFile file(path);
    fail::point("store.cold.swap");
    // Swap-in must open what was just written: an encrypted era needs the
    // same key the encoder was handed.
    trace::BlockView view(file.bytes(), cold.binary.encrypt
                                           ? cold.binary.key
                                           : std::optional<CipherKey>{});
    // Swap the pool onto the container before releasing the batch, so a
    // failed map/open above leaves the store untouched.
    pool.blocks.emplace(std::move(view));
    pool.file = std::move(file);
    pool.batch = trace::EventBatch();
    for (std::size_t s = pool.first_source;
         s < pool.first_source + pool.source_count; ++s) {
      sources_[s].view_backed = true;
    }
    index_pool(pool);  // rebuilt from the footer (ids are unchanged)
  }
  return pools_.size();
}

namespace {

/// The era sequence number from "<prefix>-<n>.iotb3"-style names; nullopt
/// when the stem has no trailing "-<digits>".
[[nodiscard]] std::optional<std::uint64_t> parse_era_seq(
    const std::string& name) {
  const std::string stem = std::filesystem::path(name).stem().string();
  const std::size_t dash = stem.rfind('-');
  if (dash == std::string::npos || dash + 1 == stem.size()) {
    return std::nullopt;
  }
  std::uint64_t v = 0;
  for (std::size_t i = dash + 1; i < stem.size(); ++i) {
    if (stem[i] < '0' || stem[i] > '9') {
      return std::nullopt;
    }
    v = v * 10 + static_cast<std::uint64_t>(stem[i] - '0');
  }
  return v;
}

/// Recovery candidates are the container files (.iotb/.iotb2/.iotb3);
/// anything else in the directory (logs, READMEs) is simply ignored.
[[nodiscard]] bool is_container_name(const std::string& name) {
  const std::string ext = std::filesystem::path(name).extension().string();
  return ext.rfind(".iotb", 0) == 0;
}

}  // namespace

StoreHealth UnifiedTraceStore::attach_dir(const std::string& directory,
                                          const AttachOptions& options) {
  namespace fs = std::filesystem;
  const obs::ScopedTimer attach_timer(metrics().attach_ns);
  StoreHealth health;
  std::error_code ec;
  fs::directory_iterator dir_it(directory, ec);
  if (ec) {
    throw IoError("unified store: cannot read directory '" + directory +
                  "'");
  }

  // Pass 1: sweep torn write leftovers and collect container candidates.
  // A .tmp file is by construction uncommitted (the protocol renames it
  // away before the manifest commit), so deleting it can never lose data.
  std::vector<std::string> names;
  for (const fs::directory_entry& entry : dir_it) {
    if (!entry.is_regular_file(ec)) {
      continue;
    }
    const std::string name = entry.path().filename().string();
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
      fs::remove(entry.path(), ec);
      if (!ec) {
        ++health.torn_tmps_removed;
        IOTAXO_LOG(LogLevel::kInfo)
            << "attach_dir: removed torn write leftover '" << name << "'";
      }
      continue;
    }
    if (name == kManifestFileName) {
      continue;
    }
    if (is_container_name(name)) {
      names.push_back(name);
    }
  }
  // Attach order must not depend on directory iteration order: sort by
  // era sequence (then name), the order the eras were committed in.
  std::sort(names.begin(), names.end(),
            [](const std::string& a, const std::string& b) {
              const auto sa = parse_era_seq(a);
              const auto sb = parse_era_seq(b);
              if (sa.has_value() != sb.has_value()) {
                return sb.has_value();  // unnumbered names last
              }
              if (sa.has_value() && *sa != *sb) {
                return *sa < *sb;
              }
              return a < b;
            });

  // Whatever happens below, later cold compactions into this directory
  // must not collide with any file already present — committed or not.
  for (const std::string& name : names) {
    if (const auto seq = parse_era_seq(name)) {
      cold_era_seq_ =
          std::max(cold_era_seq_, static_cast<std::size_t>(*seq) + 1);
    }
  }

  const auto quarantine = [&health](const std::string& file,
                                    std::string reason) {
    IOTAXO_LOG(LogLevel::kWarn)
        << "attach_dir: quarantined '" << file << "': " << reason;
    health.quarantined.push_back({file, std::move(reason)});
  };

  // Pass 2: the manifest decides what is committed. A corrupt manifest is
  // itself quarantined and recovery degrades to open-validation of every
  // container (the pre-manifest behavior) rather than refusing the
  // directory.
  std::optional<StoreManifest> manifest;
  try {
    manifest = StoreManifest::load(directory);
  } catch (const Error& e) {
    quarantine(std::string(kManifestFileName), e.what());
  }

  if (manifest.has_value()) {
    cold_era_seq_ = std::max(
        cold_era_seq_, static_cast<std::size_t>(manifest->next_seq));
    std::set<std::string> listed;
    for (const ManifestEntry& e : manifest->entries) {
      listed.insert(e.name);
      const std::string path = directory + "/" + e.name;
      std::error_code sec;
      const std::uintmax_t size = fs::file_size(path, sec);
      if (sec) {
        quarantine(e.name, "listed in manifest but missing on disk");
        continue;
      }
      if (size != e.size) {
        quarantine(e.name, "size " + std::to_string(size) +
                               " != manifest's " + std::to_string(e.size));
        continue;
      }
      try {
        trace::MappedTraceFile file(path);
        if (crc32(file.bytes()) != e.crc) {
          quarantine(e.name, "file CRC does not match the manifest");
          continue;
        }
        ingest_view(std::move(file), options.metadata, options.key);
        if (pools_.back().persisted_index) {
          metrics().attach_index_adopted.add(1);
        }
        ++health.recovered_eras;
      } catch (const Error& err) {
        quarantine(e.name, err.what());
      }
    }
    for (const std::string& name : names) {
      if (listed.find(name) == listed.end()) {
        quarantine(name,
                   "not committed in the manifest (crash between era "
                   "rename and manifest update?)");
      }
    }
  } else {
    // No trustworthy manifest: serve every container that opens and
    // validates cleanly, quarantine the rest.
    for (const std::string& name : names) {
      try {
        ingest_view(directory + "/" + name, options.metadata, options.key);
        if (pools_.back().persisted_index) {
          metrics().attach_index_adopted.add(1);
        }
        ++health.recovered_eras;
      } catch (const Error& err) {
        quarantine(name, err.what());
      }
    }
  }
  metrics().attach_recovered.add(health.recovered_eras);
  metrics().attach_quarantined.add(health.quarantined.size());
  metrics().attach_torn_tmps.add(health.torn_tmps_removed);
  IOTAXO_LOG(LogLevel::kInfo)
      << "attach_dir: '" << directory << "' recovered "
      << health.recovered_eras << " era(s), quarantined "
      << health.quarantined.size() << ", removed "
      << health.torn_tmps_removed << " torn tmp(s)";
  return health;
}

std::vector<StorePoolInfo> UnifiedTraceStore::pool_infos() const {
  std::vector<StorePoolInfo> infos;
  infos.reserve(pools_.size());
  for (const StorePool& pool : pools_) {
    StorePoolInfo info;
    info.first_source = pool.first_source;
    info.source_count = pool.source_count;
    if (pool.blocks.has_value()) {
      info.view_backed = true;
      info.block_backed = true;
      info.blocks = pool.blocks->block_count();
      info.records = static_cast<long long>(pool.blocks->size());
      info.approx_bytes = pool.file.size();
      info.encrypted = pool.blocks->encrypted();
      info.projected = pool.blocks->projected();
      info.stored_bytes = pool.blocks->stored_bytes_total();
      info.decoded_stored_bytes = pool.blocks->decoded_stored_bytes();
      info.damaged_blocks = pool.blocks->failed_blocks();
    } else if (pool.view.has_value()) {
      info.view_backed = true;
      info.records = static_cast<long long>(pool.view->size());
      info.approx_bytes = pool.file.size();
    } else {
      info.records = static_cast<long long>(pool.batch.size());
      info.approx_bytes = approx_batch_bytes(pool.batch);
    }
    info.any = pool.index.any;
    if (info.any) {
      info.min_time = pool.index.min_time;
      info.max_time = pool.index.max_time;
    }
    info.open_era = pool.open;
    info.flushes_absorbed = pool.flushes;
    info.persisted_index = pool.persisted_index;
    infos.push_back(info);
  }
  return infos;
}

void UnifiedTraceStore::check_pool_index(std::size_t p) const {
  if (p >= pools_.size()) {
    throw ConfigError("unified store: pool index out of range");
  }
}

const UnifiedTraceStore::StorePool& UnifiedTraceStore::pool_for(
    std::size_t source) const {
  // Pools are sorted by first_source; find the last pool starting at or
  // before `source`.
  const auto it = std::upper_bound(
      pools_.begin(), pools_.end(), source,
      [](std::size_t s, const StorePool& p) { return s < p.first_source; });
  return *(it - 1);
}

const trace::EventBatch& UnifiedTraceStore::source_batch(
    std::size_t source) const {
  if (source >= sources_.size()) {
    throw ConfigError("unified store: source index out of range");
  }
  const StorePool& pool = pool_for(source);
  if (pool.view.has_value() || pool.blocks.has_value()) {
    throw ConfigError(
        "unified store: source is view-backed; its records live in the "
        "mapped container, not an owned batch");
  }
  if (pool.source_count != 1) {
    throw ConfigError(
        "unified store: source was merged into an era by compact(); "
        "per-source batches no longer exist");
  }
  return pool.batch;
}

std::size_t UnifiedTraceStore::resolved_query_threads() const {
  return query_threads_ == 0
             ? std::max<std::size_t>(1, std::thread::hardware_concurrency())
             : query_threads_;
}

std::size_t UnifiedTraceStore::query_chunks() const {
  return std::max<std::size_t>(
      std::min(resolved_query_threads(), pools_.size()), 1);
}

void UnifiedTraceStore::for_each_pool_chunk(
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn)
    const {
  const std::size_t n = pools_.size();
  const std::size_t chunks = query_chunks();
  if (chunks <= 1) {
    fn(0, 0, n);
    return;
  }
  parallel_for(
      chunks,
      [&](std::size_t c) { fn(c, n * c / chunks, n * (c + 1) / chunks); },
      chunks);
}

void UnifiedTraceStore::note_damage(std::uint64_t records) const noexcept {
  damage_->blocks.fetch_add(1, std::memory_order_relaxed);
  damage_->records.fetch_add(records, std::memory_order_relaxed);
  metrics().damage_blocks.add(1);
  metrics().damage_records.add(records);
}

std::map<std::string, CallStats> UnifiedTraceStore::call_stats() const {
  metrics().queries.add(1);
  const obs::ScopedTimer query_timer(metrics().call_stats_ns);
  // Per-worker partials, merged in chunk (== pool == source) order: sums
  // commute, so the result matches the serial single-map scan exactly.
  const std::size_t chunks = query_chunks();
  std::vector<std::map<std::string, CallStats>> partials(chunks);
  for_each_pool_chunk([&](std::size_t c, std::size_t begin, std::size_t end) {
    std::map<std::string, CallStats>& stats = partials[c];
    std::vector<trace::scan::CallAccum> rows;
    for (std::size_t s = begin; s < end; ++s) {
      const StorePool& pool = pools_[s];
      if (use_indexes_ && !pool.index.any) {
        metrics().pools_skipped.add(1);
        continue;
      }
      with_access(pool.batch, pool.view, pool.blocks, [&](const auto& acc) {
        // Accumulate per string id into a flat row table (the SIMD kernel's
        // scatter target), then fold the touched rows into the name map —
        // one map lookup per distinct name per pool.
        rows.assign(acc.string_count(), trace::scan::CallAccum{});
        const std::size_t segments = acc.segment_count();
        // Every segment is touched; decode them block-parallel up front on
        // the leftover thread budget. Call stats read only hot columns, so
        // projected pools decode (and decrypt) just the hot group.
        std::vector<std::size_t> touched;
        touched.reserve(segments);
        for (std::size_t k = 0; k < segments; ++k) {
          if (acc.segment_begin(k) != acc.segment_end(k)) {
            touched.push_back(k);
          }
        }
        metrics().segments_scanned.add(touched.size());
        acc.segment_prefetch(touched, prefetch_threads(), /*hot_only=*/true);
        for (const std::size_t k : touched) {
          const std::size_t seg_begin = acc.segment_begin(k);
          const std::size_t seg_end = acc.segment_end(k);
          // Segment decode is all-or-nothing: a damaged block throws
          // before a single record accumulates, so skipping it under
          // skip_damaged drops exactly that segment's records.
          try {
            const std::uint8_t* hot = acc.segment_hot_bytes(k);
            if (hot != nullptr) {
              trace::scan::accumulate_call_stats_hot(hot, seg_end - seg_begin,
                                                     rows.data());
              continue;
            }
            const std::uint8_t* raw = acc.segment_record_bytes(k);
            if (raw != nullptr) {
              trace::scan::accumulate_call_stats(raw, seg_end - seg_begin,
                                                 rows.data());
              continue;
            }
            for (std::size_t i = seg_begin; i < seg_end; ++i) {
              const auto& rec = acc.record(i);
              trace::scan::CallAccum& row = rows[rec.name];
              ++row.count;
              row.time += rec.duration;
              if (rec.is_io_call()) {
                row.bytes += rec.bytes;
              }
            }
          } catch (const FormatError&) {
            if (!scan_policy_.skip_damaged) {
              throw;
            }
            note_damage(seg_end - seg_begin);
          }
        }
        for (std::size_t id = 0; id < rows.size(); ++id) {
          const trace::scan::CallAccum& row = rows[id];
          if (row.count == 0) {
            continue;
          }
          CallStats& slot =
              stats[std::string(acc.string(static_cast<trace::StrId>(id)))];
          slot.count += row.count;
          slot.total_time += row.time;
          slot.total_bytes += row.bytes;
        }
      });
    }
  });
  std::map<std::string, CallStats> stats;
  for (std::size_t c = 0; c < chunks; ++c) {
    for (const auto& [name, s] : partials[c]) {
      CallStats& merged = stats[name];
      merged.count += s.count;
      merged.total_time += s.total_time;
      merged.total_bytes += s.total_bytes;
    }
  }
  return stats;
}

std::vector<trace::TraceEvent> UnifiedTraceStore::rank_timeline(
    int rank) const {
  metrics().queries.add(1);
  const obs::ScopedTimer query_timer(metrics().rank_timeline_ns);
  std::vector<trace::TraceEvent> out;
  for (const StorePool& pool : pools_) {
    with_access(pool.batch, pool.view, pool.blocks, [&](const auto& acc) {
      const std::size_t segments = acc.segment_count();
      // materialize() reads every column, so prefetch full records; the
      // pool walk itself is serial, so the whole thread budget applies.
      std::vector<std::size_t> touched;
      touched.reserve(segments);
      for (std::size_t k = 0; k < segments; ++k) {
        if (acc.segment_begin(k) != acc.segment_end(k)) {
          touched.push_back(k);
        }
      }
      metrics().segments_scanned.add(touched.size());
      acc.segment_prefetch(touched, resolved_query_threads(),
                           /*hot_only=*/false);
      for (std::size_t k = 0; k < segments; ++k) {
        const std::size_t seg_begin = acc.segment_begin(k);
        const std::size_t seg_end = acc.segment_end(k);
        std::uint32_t args_begin = acc.segment_args_begin(k);
        // A damaged segment throws on its first record (decode precedes
        // access), so no partial segment ever lands in `out`.
        try {
          for (std::size_t i = seg_begin; i < seg_end; ++i) {
            const auto& rec = acc.record(i);
            if (rec.rank == rank) {
              out.push_back(acc.materialize(i, args_begin));
            }
            args_begin += rec.args_count;
          }
        } catch (const FormatError&) {
          if (!scan_policy_.skip_damaged) {
            throw;
          }
          note_damage(seg_end - seg_begin);
        }
      }
    });
  }
  std::sort(out.begin(), out.end(),
            [](const trace::TraceEvent& a, const trace::TraceEvent& b) {
              return a.local_start < b.local_start;
            });
  return out;
}

Bytes UnifiedTraceStore::bytes_in_window(SimTime begin, SimTime end) const {
  metrics().queries.add(1);
  const obs::ScopedTimer query_timer(metrics().bytes_in_window_ns);
  std::vector<Bytes> partials(query_chunks(), 0);
  for_each_pool_chunk(
      [&](std::size_t c, std::size_t chunk_begin, std::size_t chunk_end) {
        Bytes total = 0;
        for (std::size_t s = chunk_begin; s < chunk_end; ++s) {
          const StorePool& pool = pools_[s];
          if (use_indexes_ &&
              (!pool.index.any || pool.index.max_time < begin ||
               pool.index.min_time >= end)) {
            metrics().pools_skipped.add(1);
            continue;  // no record can fall inside the window
          }
          const PoolIndex& idx = pool.index;
          if (use_indexes_ && !idx.has_name(idx.sys_write_id) &&
              !idx.has_name(idx.sys_read_id)) {
            metrics().pools_skipped.add(1);
            continue;  // neither transfer call appears as a record name
          }
          with_access(pool.batch, pool.view, pool.blocks,
                      [&](const auto& acc) {
            const std::size_t segments = acc.segment_count();
            // Index-skip first, then decode the surviving blocks in
            // parallel. The window sum reads only hot columns, so
            // projected pools decode a fraction of their stored bytes.
            std::vector<std::size_t> touched;
            touched.reserve(segments);
            std::size_t index_skipped = 0;
            for (std::size_t k = 0; k < segments; ++k) {
              if (use_indexes_ &&
                  (!acc.segment_overlaps(k, begin, end) ||
                   (!acc.segment_has_name(k, idx.sys_write_id) &&
                    !acc.segment_has_name(k, idx.sys_read_id)))) {
                ++index_skipped;
                continue;  // skipped blocks stay compressed on disk
              }
              if (acc.segment_begin(k) != acc.segment_end(k)) {
                touched.push_back(k);
              }
            }
            metrics().segments_scanned.add(touched.size());
            metrics().segments_skipped.add(index_skipped);
            acc.segment_prefetch(touched, prefetch_threads(),
                                 /*hot_only=*/true);
            for (const std::size_t k : touched) {
              const std::size_t seg_begin = acc.segment_begin(k);
              const std::size_t seg_end = acc.segment_end(k);
              try {
                const std::uint8_t* hot = acc.segment_hot_bytes(k);
                if (hot != nullptr) {
                  total += trace::scan::sum_transfer_bytes_in_window_hot(
                      hot, seg_end - seg_begin, idx.sys_write_id,
                      idx.sys_read_id, begin, end);
                  continue;
                }
                const std::uint8_t* raw = acc.segment_record_bytes(k);
                if (raw != nullptr) {
                  total += trace::scan::sum_transfer_bytes_in_window(
                      raw, seg_end - seg_begin, idx.sys_write_id,
                      idx.sys_read_id, begin, end);
                  continue;
                }
                for (std::size_t i = seg_begin; i < seg_end; ++i) {
                  const auto& rec = acc.record(i);
                  if (is_transfer(rec, idx.sys_write_id, idx.sys_read_id) &&
                      rec.local_start >= begin && rec.local_start < end) {
                    total += rec.bytes;
                  }
                }
              } catch (const FormatError&) {
                if (!scan_policy_.skip_damaged) {
                  throw;
                }
                note_damage(seg_end - seg_begin);
              }
            }
          });
        }
        partials[c] = total;
      });
  Bytes total = 0;
  for (const Bytes b : partials) {
    total += b;
  }
  return total;
}

std::vector<std::pair<SimTime, Bytes>> UnifiedTraceStore::io_rate_series(
    SimTime bucket_width) const {
  metrics().queries.add(1);
  const obs::ScopedTimer query_timer(metrics().io_rate_series_ns);
  std::vector<std::pair<SimTime, Bytes>> series;
  if (total_events_ == 0 || bucket_width <= 0) {
    return series;
  }
  bool any = false;
  SimTime lo = 0;
  SimTime hi = 0;
  if (use_indexes_) {
    // The pool indexes already hold each pool's min/max corrected stamp —
    // the whole span phase collapses to a pool-count loop.
    for (const StorePool& pool : pools_) {
      if (!pool.index.any) {
        continue;
      }
      lo = any ? std::min(lo, pool.index.min_time) : pool.index.min_time;
      hi = any ? std::max(hi, pool.index.max_time) : pool.index.max_time;
      any = true;
    }
  } else {
    struct Span {
      bool any = false;
      SimTime lo = 0;
      SimTime hi = 0;
    };
    std::vector<Span> spans(query_chunks());
    for_each_pool_chunk(
        [&](std::size_t c, std::size_t chunk_begin, std::size_t chunk_end) {
          Span& span = spans[c];
          const auto fold = [&span](SimTime seg_lo, SimTime seg_hi) {
            if (!span.any) {
              span.lo = seg_lo;
              span.hi = seg_hi;
              span.any = true;
            } else {
              span.lo = std::min(span.lo, seg_lo);
              span.hi = std::max(span.hi, seg_hi);
            }
          };
          for (std::size_t s = chunk_begin; s < chunk_end; ++s) {
            const StorePool& pool = pools_[s];
            with_access(pool.batch, pool.view, pool.blocks,
                        [&](const auto& acc) {
              const std::size_t segments = acc.segment_count();
              for (std::size_t k = 0; k < segments; ++k) {
                const std::size_t seg_begin = acc.segment_begin(k);
                const std::size_t seg_end = acc.segment_end(k);
                if (seg_begin == seg_end) {
                  continue;
                }
                SimTime seg_lo = 0;
                SimTime seg_hi = 0;
                // Block-backed segments carry exact stamp bounds in the
                // footer mini-index — fold those instead of decompressing
                // (and CRC-verifying) whole cold blocks just for a span.
                if (acc.segment_stamp_bounds(k, &seg_lo, &seg_hi)) {
                  fold(seg_lo, seg_hi);
                  continue;
                }
                // Damage here is skipped but not counted: the bucket
                // phase below touches the same segment and counts it,
                // keeping one skip per query.
                try {
                  const std::uint8_t* raw = acc.segment_record_bytes(k);
                  if (raw != nullptr) {
                    trace::scan::minmax_stamps(raw, seg_end - seg_begin,
                                               &seg_lo, &seg_hi);
                    fold(seg_lo, seg_hi);
                    continue;
                  }
                  for (std::size_t i = seg_begin; i < seg_end; ++i) {
                    const SimTime t = acc.record(i).local_start;
                    fold(t, t);
                  }
                } catch (const FormatError&) {
                  if (!scan_policy_.skip_damaged) {
                    throw;
                  }
                }
              }
            });
          }
        });
    for (const Span& span : spans) {
      if (!span.any) {
        continue;
      }
      lo = any ? std::min(lo, span.lo) : span.lo;
      hi = any ? std::max(hi, span.hi) : span.hi;
      any = true;
    }
  }
  if (!any) {
    return series;
  }
  // One buckets-length partial per worker chunk (not per pool), so peak
  // memory stays bounded by thread count even for fine buckets over many
  // pools; bucket additions commute, so the merge is exact.
  const auto buckets = static_cast<std::size_t>((hi - lo) / bucket_width) + 1;
  const std::size_t chunks = query_chunks();
  std::vector<std::vector<Bytes>> partial_sums(chunks);
  for_each_pool_chunk(
      [&](std::size_t c, std::size_t chunk_begin, std::size_t chunk_end) {
        std::vector<Bytes>& sums = partial_sums[c];
        sums.assign(buckets, 0);
        for (std::size_t s = chunk_begin; s < chunk_end; ++s) {
          const StorePool& pool = pools_[s];
          if (use_indexes_ && !pool.index.any) {
            metrics().pools_skipped.add(1);
            continue;
          }
          const PoolIndex& idx = pool.index;
          if (use_indexes_ && !idx.has_name(idx.sys_write_id) &&
              !idx.has_name(idx.sys_read_id)) {
            metrics().pools_skipped.add(1);
            continue;
          }
          with_access(pool.batch, pool.view, pool.blocks,
                      [&](const auto& acc) {
            const std::size_t segments = acc.segment_count();
            std::vector<std::size_t> touched;
            touched.reserve(segments);
            std::size_t index_skipped = 0;
            for (std::size_t k = 0; k < segments; ++k) {
              if (use_indexes_ &&
                  !acc.segment_has_name(k, idx.sys_write_id) &&
                  !acc.segment_has_name(k, idx.sys_read_id)) {
                ++index_skipped;
                continue;
              }
              if (acc.segment_begin(k) != acc.segment_end(k)) {
                touched.push_back(k);
              }
            }
            metrics().segments_scanned.add(touched.size());
            metrics().segments_skipped.add(index_skipped);
            // The bucket scatter needs cls/name/start/bytes — all hot
            // columns — so projected pools run a HotRecordView loop over
            // the 33-byte stride instead of stitching full records.
            acc.segment_prefetch(touched, prefetch_threads(),
                                 /*hot_only=*/true);
            for (const std::size_t k : touched) {
              const std::size_t seg_begin = acc.segment_begin(k);
              const std::size_t seg_end = acc.segment_end(k);
              try {
                const std::uint8_t* hot = acc.segment_hot_bytes(k);
                if (hot != nullptr) {
                  for (std::size_t i = 0; i < seg_end - seg_begin; ++i) {
                    const trace::HotRecordView rec(
                        hot + i * trace::hotlayout::kStride);
                    const trace::StrId name = rec.name();
                    if (rec.cls() == trace::EventClass::kSyscall &&
                        ((idx.sys_write_id != 0 &&
                          name == idx.sys_write_id) ||
                         (idx.sys_read_id != 0 && name == idx.sys_read_id))) {
                      sums[static_cast<std::size_t>((rec.local_start() - lo) /
                                                    bucket_width)] +=
                          rec.bytes();
                    }
                  }
                  continue;
                }
                for (std::size_t i = seg_begin; i < seg_end; ++i) {
                  const auto& rec = acc.record(i);
                  if (is_transfer(rec, idx.sys_write_id, idx.sys_read_id)) {
                    sums[static_cast<std::size_t>((rec.local_start - lo) /
                                                  bucket_width)] += rec.bytes;
                  }
                }
              } catch (const FormatError&) {
                if (!scan_policy_.skip_damaged) {
                  throw;
                }
                note_damage(seg_end - seg_begin);
              }
            }
          });
        }
      });
  std::vector<Bytes> sums(buckets, 0);
  for (const std::vector<Bytes>& partial : partial_sums) {
    if (!partial.empty()) {
      for (std::size_t i = 0; i < buckets; ++i) {
        sums[i] += partial[i];
      }
    }
  }
  series.reserve(buckets);
  for (std::size_t i = 0; i < buckets; ++i) {
    series.emplace_back(lo + static_cast<SimTime>(i) * bucket_width, sums[i]);
  }
  return series;
}

std::vector<FileHeat> UnifiedTraceStore::hottest_files(
    std::size_t limit) const {
  metrics().queries.add(1);
  const obs::ScopedTimer query_timer(metrics().hottest_files_ns);
  struct Tally {
    long long ops = 0;
    Bytes lib_bytes = 0;
    Bytes lower_bytes = 0;  // syscall + VFS views of the same transfers
  };
  // The best-effort fd -> path map threads serially through the pools (an
  // fd opened in pool k resolves path-less transfers in pool k+1), so the
  // scan runs in two phases: a parallel per-pool pass that resolves what
  // it can locally and records (a) its unresolved transfers and (b) the
  // fd -> path writes it would leave behind, then a serial fold over pools
  // that resolves the leftovers against the carried map. Within a pool the
  // local map always wins (it holds the most recent write), which is
  // exactly the state the serial single-map scan would have seen.
  struct PoolScan {
    std::map<std::string, Tally> by_path;
    std::map<int, std::string> fd_delta;  // last fd -> path write per fd
    struct Unresolved {
      int fd = -1;
      bool lib = false;
      Bytes bytes = 0;
    };
    std::vector<Unresolved> unresolved;
  };
  // Unlike the bucket scans, the partials here must stay per-pool (the
  // serial fold below needs each pool's fd delta separately); they hold
  // only what the pool actually references, so that stays cheap.
  std::vector<PoolScan> scans(pools_.size());
  for_each_pool_chunk([&](std::size_t, std::size_t chunk_begin,
                          std::size_t chunk_end) {
    for (std::size_t s = chunk_begin; s < chunk_end; ++s) {
      const StorePool& pool = pools_[s];
      // A pool with neither fd/path records nor byte-moving I/O calls
      // contributes no tallies, no fd deltas and no unresolved transfers.
      if (use_indexes_ && !pool.index.has_fd_path &&
          !pool.index.has_io_bytes) {
        metrics().pools_skipped.add(1);
        continue;
      }
      PoolScan& scan = scans[s];
      with_access(pool.batch, pool.view, pool.blocks, [&](const auto& acc) {
        const std::size_t segments = acc.segment_count();
        std::vector<std::size_t> touched;
        touched.reserve(segments);
        std::size_t index_skipped = 0;
        for (std::size_t k = 0; k < segments; ++k) {
          // The pool-level skip, per block: such a segment writes no fd
          // delta and contributes no transfers, so skipping it leaves the
          // serial fold's state untouched.
          if (use_indexes_ && !acc.segment_has_fd_path(k) &&
              !acc.segment_has_io_bytes(k)) {
            ++index_skipped;
            continue;
          }
          if (acc.segment_begin(k) != acc.segment_end(k)) {
            touched.push_back(k);
          }
        }
        metrics().segments_scanned.add(touched.size());
        metrics().segments_skipped.add(index_skipped);
        // Paths and fds live in the cold column group, so this scan needs
        // full records — prefetch decodes (and stitches) them in parallel.
        acc.segment_prefetch(touched, prefetch_threads(),
                             /*hot_only=*/false);
        for (const std::size_t k : touched) {
          const std::size_t seg_begin = acc.segment_begin(k);
          const std::size_t seg_end = acc.segment_end(k);
          // First-record decode failure precedes any fd-delta or tally
          // write, so a skipped segment leaves the serial fold's carried
          // state exactly as if the segment were index-skipped.
          try {
            for (std::size_t i = seg_begin; i < seg_end; ++i) {
              const auto& rec = acc.record(i);
              const std::string_view rec_path =
                  rec.path == 0 ? std::string_view{} : acc.path(i);
              if (!rec_path.empty() && rec.fd >= 0) {
                scan.fd_delta[rec.fd] = std::string(rec_path);
              }
              if (!rec.is_io_call() || rec.bytes <= 0) {
                continue;
              }
              const bool lib = rec.cls == trace::EventClass::kLibraryCall;
              std::string path(rec_path);
              if (path.empty() && rec.fd >= 0) {
                const auto it = scan.fd_delta.find(rec.fd);
                if (it == scan.fd_delta.end()) {
                  scan.unresolved.push_back({rec.fd, lib, rec.bytes});
                  continue;
                }
                path = it->second;
              }
              if (path.empty()) {
                path = "(unknown)";
              }
              Tally& tally = scan.by_path[path];
              ++tally.ops;
              // Library wrappers and the syscalls beneath them report the
              // same transfer; take whichever view saw more (captures
              // lib-only traces like //TRACE's without double counting
              // ltrace's dual view).
              if (lib) {
                tally.lib_bytes += rec.bytes;
              } else {
                tally.lower_bytes += rec.bytes;
              }
          }
          } catch (const FormatError&) {
            if (!scan_policy_.skip_damaged) {
              throw;
            }
            note_damage(seg_end - seg_begin);
          }
        }
      });
    }
  });

  std::map<std::string, Tally> by_path;
  std::map<int, std::string> carried;  // fd -> path state across pools
  for (PoolScan& scan : scans) {
    for (const PoolScan::Unresolved& u : scan.unresolved) {
      const auto it = carried.find(u.fd);
      const std::string path =
          it == carried.end() ? std::string("(unknown)") : it->second;
      Tally& tally = scan.by_path[path];
      ++tally.ops;
      if (u.lib) {
        tally.lib_bytes += u.bytes;
      } else {
        tally.lower_bytes += u.bytes;
      }
    }
    for (const auto& [path, tally] : scan.by_path) {
      Tally& merged = by_path[path];
      merged.ops += tally.ops;
      merged.lib_bytes += tally.lib_bytes;
      merged.lower_bytes += tally.lower_bytes;
    }
    for (auto& [fd, path] : scan.fd_delta) {
      carried[fd] = std::move(path);
    }
  }

  std::vector<FileHeat> out;
  out.reserve(by_path.size());
  for (const auto& [path, tally] : by_path) {
    out.push_back(
        {path, tally.ops, std::max(tally.lib_bytes, tally.lower_bytes)});
  }
  std::sort(out.begin(), out.end(), [](const FileHeat& a, const FileHeat& b) {
    return a.bytes > b.bytes;
  });
  if (out.size() > limit) {
    out.resize(limit);
  }
  return out;
}

}  // namespace iotaxo::analysis
