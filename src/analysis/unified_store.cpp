#include "analysis/unified_store.h"

#include <algorithm>

#include "util/error.h"

namespace iotaxo::analysis {

namespace {

/// Interned ids of the transfer syscalls a batch may contain; id 0 (the
/// empty string) marks "not present in this pool" because no event has an
/// empty name.
struct IoCallIds {
  trace::StrId sys_write = 0;
  trace::StrId sys_read = 0;

  explicit IoCallIds(const trace::StringPool& pool) {
    sys_write = pool.find("SYS_write").value_or(0);
    sys_read = pool.find("SYS_read").value_or(0);
  }

  [[nodiscard]] bool is_transfer(const trace::EventRecord& rec) const noexcept {
    return rec.cls == trace::EventClass::kSyscall &&
           ((sys_write != 0 && rec.name == sys_write) ||
            (sys_read != 0 && rec.name == sys_read));
  }
};

}  // namespace

namespace {

[[nodiscard]] StoreSourceInfo parse_source_info(
    const std::map<std::string, std::string>& metadata) {
  StoreSourceInfo info;
  const auto framework_it = metadata.find("framework");
  info.framework =
      framework_it == metadata.end() ? "(unknown)" : framework_it->second;
  const auto app_it = metadata.find("application");
  info.application = app_it == metadata.end() ? "(unknown)" : app_it->second;
  return info;
}

/// Rewrite one record's local_start onto the common timeline; ranks the
/// probe set does not cover keep their raw stamps.
void correct_record(trace::EventBatch& batch, std::size_t i,
                    const SkewDriftModel& model) {
  const trace::EventRecord& rec = batch.record(i);
  if (rec.rank < 0) {
    return;
  }
  try {
    batch.set_local_start(i, model.correct(rec.rank, rec.local_start));
  } catch (const Error&) {
    // rank missing from the probe set; keep the raw stamp
  }
}

}  // namespace

std::optional<SkewDriftModel> UnifiedTraceStore::fit_model(
    const std::vector<trace::TraceEvent>& clock_probes,
    StoreSourceInfo& info) const {
  if (clock_probes.empty()) {
    return std::nullopt;
  }
  try {
    SkewDriftModel model = SkewDriftModel::fit(clock_probes);
    info.time_corrected = true;
    return model;
  } catch (const Error&) {
    return std::nullopt;  // incomplete probe sets: fall back to raw stamps
  }
}

std::size_t UnifiedTraceStore::ingest_source(
    StoreSourceInfo info, trace::EventBatch batch,
    const std::optional<SkewDriftModel>& model,
    const std::vector<trace::DependencyEdge>& dependencies) {
  if (model.has_value()) {
    for (std::size_t i = 0; i < batch.size(); ++i) {
      correct_record(batch, i, *model);
    }
  }
  info.events = static_cast<long long>(batch.size());
  total_events_ += info.events;
  dependencies_.insert(dependencies_.end(), dependencies.begin(),
                       dependencies.end());
  const std::size_t source_index = sources_.size();
  sources_.push_back(std::move(info));
  batches_.push_back(std::move(batch));
  return source_index;
}

std::size_t UnifiedTraceStore::ingest(const trace::TraceBundle& bundle) {
  StoreSourceInfo info = parse_source_info(bundle.metadata);
  const std::optional<SkewDriftModel> model =
      fit_model(bundle.clock_probes, info);

  trace::EventBatch batch;
  for (const trace::RankStream& rs : bundle.ranks) {
    for (const trace::TraceEvent& ev : rs.events) {
      batch.append(ev);
    }
  }
  return ingest_source(std::move(info), std::move(batch), model,
                       bundle.dependencies);
}

std::size_t UnifiedTraceStore::ingest(
    const trace::EventBatch& batch,
    const std::map<std::string, std::string>& metadata,
    const std::vector<trace::TraceEvent>& clock_probes,
    const std::vector<trace::DependencyEdge>& dependencies) {
  StoreSourceInfo info = parse_source_info(metadata);
  const std::optional<SkewDriftModel> model = fit_model(clock_probes, info);

  trace::EventBatch stored;
  stored.append(batch);  // re-intern into the store's own pool
  return ingest_source(std::move(info), std::move(stored), model,
                       dependencies);
}

const trace::EventBatch& UnifiedTraceStore::source_batch(
    std::size_t source) const {
  if (source >= batches_.size()) {
    throw ConfigError("unified store: source index out of range");
  }
  return batches_[source];
}

std::map<std::string, CallStats> UnifiedTraceStore::call_stats() const {
  std::map<std::string, CallStats> stats;
  std::vector<CallStats*> scratch;
  for (const trace::EventBatch& batch : batches_) {
    // One map lookup per distinct name per source; flat hits otherwise.
    scratch.assign(batch.pool().size(), nullptr);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const trace::EventRecord& rec = batch.record(i);
      CallStats*& slot = scratch[rec.name];
      if (slot == nullptr) {
        slot = &stats[std::string(batch.name(i))];
      }
      ++slot->count;
      slot->total_time += rec.duration;
      if (rec.is_io_call()) {
        slot->total_bytes += rec.bytes;
      }
    }
  }
  return stats;
}

std::vector<trace::TraceEvent> UnifiedTraceStore::rank_timeline(
    int rank) const {
  std::vector<trace::TraceEvent> out;
  for (const trace::EventBatch& batch : batches_) {
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (batch.record(i).rank == rank) {
        out.push_back(batch.materialize(i));
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const trace::TraceEvent& a, const trace::TraceEvent& b) {
              return a.local_start < b.local_start;
            });
  return out;
}

Bytes UnifiedTraceStore::bytes_in_window(SimTime begin, SimTime end) const {
  Bytes total = 0;
  for (const trace::EventBatch& batch : batches_) {
    const IoCallIds ids(batch.pool());
    for (const trace::EventRecord& rec : batch.records()) {
      if (ids.is_transfer(rec) && rec.local_start >= begin &&
          rec.local_start < end) {
        total += rec.bytes;
      }
    }
  }
  return total;
}

std::vector<std::pair<SimTime, Bytes>> UnifiedTraceStore::io_rate_series(
    SimTime bucket_width) const {
  std::vector<std::pair<SimTime, Bytes>> series;
  if (total_events_ == 0 || bucket_width <= 0) {
    return series;
  }
  bool any = false;
  SimTime lo = 0;
  SimTime hi = 0;
  for (const trace::EventBatch& batch : batches_) {
    for (const trace::EventRecord& rec : batch.records()) {
      if (!any) {
        lo = hi = rec.local_start;
        any = true;
      } else {
        lo = std::min(lo, rec.local_start);
        hi = std::max(hi, rec.local_start);
      }
    }
  }
  if (!any) {
    return series;
  }
  const auto buckets = static_cast<std::size_t>((hi - lo) / bucket_width) + 1;
  std::vector<Bytes> sums(buckets, 0);
  for (const trace::EventBatch& batch : batches_) {
    const IoCallIds ids(batch.pool());
    for (const trace::EventRecord& rec : batch.records()) {
      if (ids.is_transfer(rec)) {
        sums[static_cast<std::size_t>((rec.local_start - lo) / bucket_width)] +=
            rec.bytes;
      }
    }
  }
  series.reserve(buckets);
  for (std::size_t i = 0; i < buckets; ++i) {
    series.emplace_back(lo + static_cast<SimTime>(i) * bucket_width, sums[i]);
  }
  return series;
}

std::vector<FileHeat> UnifiedTraceStore::hottest_files(
    std::size_t limit) const {
  struct Tally {
    FileHeat heat;
    Bytes lib_bytes = 0;
    Bytes lower_bytes = 0;  // syscall + VFS views of the same transfers
  };
  std::map<std::string, Tally> by_path;
  std::map<int, std::string> fd_paths;  // best-effort fd -> path
  for (const trace::EventBatch& batch : batches_) {
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const trace::EventRecord& rec = batch.record(i);
      const std::string_view rec_path = batch.path(i);
      if (!rec_path.empty() && rec.fd >= 0) {
        fd_paths[rec.fd] = std::string(rec_path);
      }
      if (!rec.is_io_call() || rec.bytes <= 0) {
        continue;
      }
      std::string path(rec_path);
      if (path.empty() && rec.fd >= 0) {
        const auto it = fd_paths.find(rec.fd);
        if (it != fd_paths.end()) {
          path = it->second;
        }
      }
      if (path.empty()) {
        path = "(unknown)";
      }
      Tally& tally = by_path[path];
      tally.heat.path = path;
      ++tally.heat.ops;
      // Library wrappers and the syscalls beneath them report the same
      // transfer; take whichever view saw more (captures lib-only traces
      // like //TRACE's without double counting ltrace's dual view).
      if (rec.cls == trace::EventClass::kLibraryCall) {
        tally.lib_bytes += rec.bytes;
      } else {
        tally.lower_bytes += rec.bytes;
      }
    }
  }
  std::vector<FileHeat> out;
  out.reserve(by_path.size());
  for (auto& [path, tally] : by_path) {
    tally.heat.bytes = std::max(tally.lib_bytes, tally.lower_bytes);
    out.push_back(std::move(tally.heat));
  }
  std::sort(out.begin(), out.end(), [](const FileHeat& a, const FileHeat& b) {
    return a.bytes > b.bytes;
  });
  if (out.size() > limit) {
    out.resize(limit);
  }
  return out;
}

}  // namespace iotaxo::analysis
