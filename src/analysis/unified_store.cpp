#include "analysis/unified_store.h"

#include <algorithm>
#include <thread>

#include "util/error.h"
#include "util/thread_pool.h"

namespace iotaxo::analysis {

namespace {

/// Interned ids of the transfer syscalls a batch may contain; id 0 (the
/// empty string) marks "not present in this pool" because no event has an
/// empty name.
struct IoCallIds {
  trace::StrId sys_write = 0;
  trace::StrId sys_read = 0;

  explicit IoCallIds(const trace::StringPool& pool) {
    sys_write = pool.find("SYS_write").value_or(0);
    sys_read = pool.find("SYS_read").value_or(0);
  }

  [[nodiscard]] bool is_transfer(const trace::EventRecord& rec) const noexcept {
    return rec.cls == trace::EventClass::kSyscall &&
           ((sys_write != 0 && rec.name == sys_write) ||
            (sys_read != 0 && rec.name == sys_read));
  }
};

}  // namespace

namespace {

[[nodiscard]] StoreSourceInfo parse_source_info(
    const std::map<std::string, std::string>& metadata) {
  StoreSourceInfo info;
  const auto framework_it = metadata.find("framework");
  info.framework =
      framework_it == metadata.end() ? "(unknown)" : framework_it->second;
  const auto app_it = metadata.find("application");
  info.application = app_it == metadata.end() ? "(unknown)" : app_it->second;
  return info;
}

/// Rewrite one record's local_start onto the common timeline; ranks the
/// probe set does not cover keep their raw stamps.
void correct_record(trace::EventBatch& batch, std::size_t i,
                    const SkewDriftModel& model) {
  const trace::EventRecord& rec = batch.record(i);
  if (rec.rank < 0) {
    return;
  }
  try {
    batch.set_local_start(i, model.correct(rec.rank, rec.local_start));
  } catch (const Error&) {
    // rank missing from the probe set; keep the raw stamp
  }
}

}  // namespace

std::optional<SkewDriftModel> UnifiedTraceStore::fit_model(
    const std::vector<trace::TraceEvent>& clock_probes,
    StoreSourceInfo& info) const {
  if (clock_probes.empty()) {
    return std::nullopt;
  }
  try {
    SkewDriftModel model = SkewDriftModel::fit(clock_probes);
    info.time_corrected = true;
    return model;
  } catch (const Error&) {
    return std::nullopt;  // incomplete probe sets: fall back to raw stamps
  }
}

std::size_t UnifiedTraceStore::ingest_source(
    StoreSourceInfo info, trace::EventBatch batch,
    const std::optional<SkewDriftModel>& model,
    const std::vector<trace::DependencyEdge>& dependencies) {
  if (model.has_value()) {
    for (std::size_t i = 0; i < batch.size(); ++i) {
      correct_record(batch, i, *model);
    }
  }
  info.events = static_cast<long long>(batch.size());
  total_events_ += info.events;
  dependencies_.insert(dependencies_.end(), dependencies.begin(),
                       dependencies.end());
  const std::size_t source_index = sources_.size();
  sources_.push_back(std::move(info));
  batches_.push_back(std::move(batch));
  return source_index;
}

std::size_t UnifiedTraceStore::ingest(const trace::TraceBundle& bundle) {
  StoreSourceInfo info = parse_source_info(bundle.metadata);
  const std::optional<SkewDriftModel> model =
      fit_model(bundle.clock_probes, info);

  trace::EventBatch batch;
  for (const trace::RankStream& rs : bundle.ranks) {
    for (const trace::TraceEvent& ev : rs.events) {
      batch.append(ev);
    }
  }
  return ingest_source(std::move(info), std::move(batch), model,
                       bundle.dependencies);
}

std::size_t UnifiedTraceStore::ingest(
    const trace::EventBatch& batch,
    const std::map<std::string, std::string>& metadata,
    const std::vector<trace::TraceEvent>& clock_probes,
    const std::vector<trace::DependencyEdge>& dependencies) {
  StoreSourceInfo info = parse_source_info(metadata);
  const std::optional<SkewDriftModel> model = fit_model(clock_probes, info);

  trace::EventBatch stored;
  stored.append(batch);  // re-intern into the store's own pool
  return ingest_source(std::move(info), std::move(stored), model,
                       dependencies);
}

const trace::EventBatch& UnifiedTraceStore::source_batch(
    std::size_t source) const {
  if (source >= batches_.size()) {
    throw ConfigError("unified store: source index out of range");
  }
  return batches_[source];
}

std::size_t UnifiedTraceStore::query_chunks() const {
  const std::size_t threads =
      query_threads_ == 0 ? std::max(1u, std::thread::hardware_concurrency())
                          : query_threads_;
  return std::max<std::size_t>(std::min(threads, batches_.size()), 1);
}

void UnifiedTraceStore::for_each_source_chunk(
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn)
    const {
  const std::size_t n = batches_.size();
  const std::size_t chunks = query_chunks();
  if (chunks <= 1) {
    fn(0, 0, n);
    return;
  }
  parallel_for(
      chunks,
      [&](std::size_t c) { fn(c, n * c / chunks, n * (c + 1) / chunks); },
      chunks);
}

std::map<std::string, CallStats> UnifiedTraceStore::call_stats() const {
  // Per-worker partials, merged in chunk (== source) order: sums commute,
  // so the result matches the serial single-map scan exactly.
  const std::size_t chunks = query_chunks();
  std::vector<std::map<std::string, CallStats>> partials(chunks);
  for_each_source_chunk([&](std::size_t c, std::size_t begin,
                            std::size_t end) {
    std::map<std::string, CallStats>& stats = partials[c];
    std::vector<CallStats*> scratch;
    for (std::size_t s = begin; s < end; ++s) {
      const trace::EventBatch& batch = batches_[s];
      // One map lookup per distinct name per source; flat hits otherwise.
      scratch.assign(batch.pool().size(), nullptr);
      for (std::size_t i = 0; i < batch.size(); ++i) {
        const trace::EventRecord& rec = batch.record(i);
        CallStats*& slot = scratch[rec.name];
        if (slot == nullptr) {
          slot = &stats[std::string(batch.name(i))];
        }
        ++slot->count;
        slot->total_time += rec.duration;
        if (rec.is_io_call()) {
          slot->total_bytes += rec.bytes;
        }
      }
    }
  });
  std::map<std::string, CallStats> stats;
  for (std::size_t c = 0; c < chunks; ++c) {
    for (const auto& [name, s] : partials[c]) {
      CallStats& merged = stats[name];
      merged.count += s.count;
      merged.total_time += s.total_time;
      merged.total_bytes += s.total_bytes;
    }
  }
  return stats;
}

std::vector<trace::TraceEvent> UnifiedTraceStore::rank_timeline(
    int rank) const {
  std::vector<trace::TraceEvent> out;
  for (const trace::EventBatch& batch : batches_) {
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (batch.record(i).rank == rank) {
        out.push_back(batch.materialize(i));
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const trace::TraceEvent& a, const trace::TraceEvent& b) {
              return a.local_start < b.local_start;
            });
  return out;
}

Bytes UnifiedTraceStore::bytes_in_window(SimTime begin, SimTime end) const {
  std::vector<Bytes> partials(query_chunks(), 0);
  for_each_source_chunk(
      [&](std::size_t c, std::size_t chunk_begin, std::size_t chunk_end) {
        Bytes total = 0;
        for (std::size_t s = chunk_begin; s < chunk_end; ++s) {
          const trace::EventBatch& batch = batches_[s];
          const IoCallIds ids(batch.pool());
          for (const trace::EventRecord& rec : batch.records()) {
            if (ids.is_transfer(rec) && rec.local_start >= begin &&
                rec.local_start < end) {
              total += rec.bytes;
            }
          }
        }
        partials[c] = total;
      });
  Bytes total = 0;
  for (const Bytes b : partials) {
    total += b;
  }
  return total;
}

std::vector<std::pair<SimTime, Bytes>> UnifiedTraceStore::io_rate_series(
    SimTime bucket_width) const {
  std::vector<std::pair<SimTime, Bytes>> series;
  if (total_events_ == 0 || bucket_width <= 0) {
    return series;
  }
  struct Span {
    bool any = false;
    SimTime lo = 0;
    SimTime hi = 0;
  };
  const std::size_t chunks = query_chunks();
  std::vector<Span> spans(chunks);
  for_each_source_chunk(
      [&](std::size_t c, std::size_t chunk_begin, std::size_t chunk_end) {
        Span& span = spans[c];
        for (std::size_t s = chunk_begin; s < chunk_end; ++s) {
          for (const trace::EventRecord& rec : batches_[s].records()) {
            if (!span.any) {
              span.lo = span.hi = rec.local_start;
              span.any = true;
            } else {
              span.lo = std::min(span.lo, rec.local_start);
              span.hi = std::max(span.hi, rec.local_start);
            }
          }
        }
      });
  bool any = false;
  SimTime lo = 0;
  SimTime hi = 0;
  for (const Span& span : spans) {
    if (!span.any) {
      continue;
    }
    lo = any ? std::min(lo, span.lo) : span.lo;
    hi = any ? std::max(hi, span.hi) : span.hi;
    any = true;
  }
  if (!any) {
    return series;
  }
  // One buckets-length partial per worker chunk (not per source), so peak
  // memory stays bounded by thread count even for fine buckets over many
  // sources; bucket additions commute, so the merge is exact.
  const auto buckets = static_cast<std::size_t>((hi - lo) / bucket_width) + 1;
  std::vector<std::vector<Bytes>> partial_sums(chunks);
  for_each_source_chunk(
      [&](std::size_t c, std::size_t chunk_begin, std::size_t chunk_end) {
        std::vector<Bytes>& sums = partial_sums[c];
        sums.assign(buckets, 0);
        for (std::size_t s = chunk_begin; s < chunk_end; ++s) {
          const trace::EventBatch& batch = batches_[s];
          const IoCallIds ids(batch.pool());
          for (const trace::EventRecord& rec : batch.records()) {
            if (ids.is_transfer(rec)) {
              sums[static_cast<std::size_t>((rec.local_start - lo) /
                                            bucket_width)] += rec.bytes;
            }
          }
        }
      });
  std::vector<Bytes> sums(buckets, 0);
  for (const std::vector<Bytes>& partial : partial_sums) {
    for (std::size_t i = 0; i < buckets; ++i) {
      sums[i] += partial[i];
    }
  }
  series.reserve(buckets);
  for (std::size_t i = 0; i < buckets; ++i) {
    series.emplace_back(lo + static_cast<SimTime>(i) * bucket_width, sums[i]);
  }
  return series;
}

std::vector<FileHeat> UnifiedTraceStore::hottest_files(
    std::size_t limit) const {
  struct Tally {
    long long ops = 0;
    Bytes lib_bytes = 0;
    Bytes lower_bytes = 0;  // syscall + VFS views of the same transfers
  };
  // The best-effort fd -> path map threads serially through the sources (an
  // fd opened in source k resolves path-less transfers in source k+1), so
  // the scan runs in two phases: a parallel per-source pass that resolves
  // what it can locally and records (a) its unresolved transfers and (b)
  // the fd -> path writes it would leave behind, then a serial fold over
  // sources that resolves the leftovers against the carried map. Within a
  // source the local map always wins (it holds the most recent write),
  // which is exactly the state the serial single-map scan would have seen.
  struct SourceScan {
    std::map<std::string, Tally> by_path;
    std::map<int, std::string> fd_delta;  // last fd -> path write per fd
    struct Unresolved {
      int fd = -1;
      bool lib = false;
      Bytes bytes = 0;
    };
    std::vector<Unresolved> unresolved;
  };
  // Unlike the bucket scans, the partials here must stay per-source (the
  // serial fold below needs each source's fd delta separately); they hold
  // only what the source actually references, so that stays cheap.
  std::vector<SourceScan> scans(batches_.size());
  for_each_source_chunk([&](std::size_t, std::size_t chunk_begin,
                            std::size_t chunk_end) {
    for (std::size_t s = chunk_begin; s < chunk_end; ++s) {
      const trace::EventBatch& batch = batches_[s];
      SourceScan& scan = scans[s];
      for (std::size_t i = 0; i < batch.size(); ++i) {
        const trace::EventRecord& rec = batch.record(i);
        const std::string_view rec_path = batch.path(i);
        if (!rec_path.empty() && rec.fd >= 0) {
          scan.fd_delta[rec.fd] = std::string(rec_path);
        }
        if (!rec.is_io_call() || rec.bytes <= 0) {
          continue;
        }
        const bool lib = rec.cls == trace::EventClass::kLibraryCall;
        std::string path(rec_path);
        if (path.empty() && rec.fd >= 0) {
          const auto it = scan.fd_delta.find(rec.fd);
          if (it == scan.fd_delta.end()) {
            scan.unresolved.push_back({rec.fd, lib, rec.bytes});
            continue;
          }
          path = it->second;
        }
        if (path.empty()) {
          path = "(unknown)";
        }
        Tally& tally = scan.by_path[path];
        ++tally.ops;
        // Library wrappers and the syscalls beneath them report the same
        // transfer; take whichever view saw more (captures lib-only traces
        // like //TRACE's without double counting ltrace's dual view).
        if (lib) {
          tally.lib_bytes += rec.bytes;
        } else {
          tally.lower_bytes += rec.bytes;
        }
      }
    }
  });

  std::map<std::string, Tally> by_path;
  std::map<int, std::string> carried;  // fd -> path state across sources
  for (SourceScan& scan : scans) {
    for (const SourceScan::Unresolved& u : scan.unresolved) {
      const auto it = carried.find(u.fd);
      const std::string path =
          it == carried.end() ? std::string("(unknown)") : it->second;
      Tally& tally = scan.by_path[path];
      ++tally.ops;
      if (u.lib) {
        tally.lib_bytes += u.bytes;
      } else {
        tally.lower_bytes += u.bytes;
      }
    }
    for (const auto& [path, tally] : scan.by_path) {
      Tally& merged = by_path[path];
      merged.ops += tally.ops;
      merged.lib_bytes += tally.lib_bytes;
      merged.lower_bytes += tally.lower_bytes;
    }
    for (auto& [fd, path] : scan.fd_delta) {
      carried[fd] = std::move(path);
    }
  }

  std::vector<FileHeat> out;
  out.reserve(by_path.size());
  for (const auto& [path, tally] : by_path) {
    out.push_back(
        {path, tally.ops, std::max(tally.lib_bytes, tally.lower_bytes)});
  }
  std::sort(out.begin(), out.end(), [](const FileHeat& a, const FileHeat& b) {
    return a.bytes > b.bytes;
  });
  if (out.size() > limit) {
    out.resize(limit);
  }
  return out;
}

}  // namespace iotaxo::analysis
