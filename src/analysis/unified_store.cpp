#include "analysis/unified_store.h"

#include <algorithm>

#include "util/error.h"

namespace iotaxo::analysis {

std::size_t UnifiedTraceStore::ingest(const trace::TraceBundle& bundle) {
  StoreSourceInfo info;
  const auto framework_it = bundle.metadata.find("framework");
  info.framework = framework_it == bundle.metadata.end()
                       ? "(unknown)"
                       : framework_it->second;
  const auto app_it = bundle.metadata.find("application");
  info.application =
      app_it == bundle.metadata.end() ? "(unknown)" : app_it->second;

  std::optional<SkewDriftModel> model;
  if (!bundle.clock_probes.empty()) {
    try {
      model = SkewDriftModel::fit(bundle.clock_probes);
      info.time_corrected = true;
    } catch (const Error&) {
      model.reset();  // incomplete probe sets: fall back to raw stamps
    }
  }

  const std::size_t source_index = sources_.size();
  for (const trace::RankStream& rs : bundle.ranks) {
    for (const trace::TraceEvent& ev : rs.events) {
      StoredEvent stored{ev, source_index};
      if (model.has_value() && ev.rank >= 0) {
        try {
          stored.event.local_start = model->correct(ev.rank, ev.local_start);
        } catch (const Error&) {
          // rank missing from the probe set; keep the raw stamp
        }
      }
      ++info.events;
      events_.push_back(std::move(stored));
    }
  }
  dependencies_.insert(dependencies_.end(), bundle.dependencies.begin(),
                       bundle.dependencies.end());
  sources_.push_back(std::move(info));
  return source_index;
}

std::map<std::string, CallStats> UnifiedTraceStore::call_stats() const {
  std::map<std::string, CallStats> stats;
  for (const StoredEvent& stored : events_) {
    CallStats& s = stats[stored.event.name];
    ++s.count;
    s.total_time += stored.event.duration;
    if (stored.event.is_io_call()) {
      s.total_bytes += stored.event.bytes;
    }
  }
  return stats;
}

std::vector<const trace::TraceEvent*> UnifiedTraceStore::rank_timeline(
    int rank) const {
  std::vector<const trace::TraceEvent*> out;
  for (const StoredEvent& stored : events_) {
    if (stored.event.rank == rank) {
      out.push_back(&stored.event);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const trace::TraceEvent* a, const trace::TraceEvent* b) {
              return a->local_start < b->local_start;
            });
  return out;
}

Bytes UnifiedTraceStore::bytes_in_window(SimTime begin, SimTime end) const {
  Bytes total = 0;
  for (const StoredEvent& stored : events_) {
    const trace::TraceEvent& ev = stored.event;
    if (ev.cls == trace::EventClass::kSyscall &&
        (ev.name == "SYS_write" || ev.name == "SYS_read") &&
        ev.local_start >= begin && ev.local_start < end) {
      total += ev.bytes;
    }
  }
  return total;
}

std::vector<std::pair<SimTime, Bytes>> UnifiedTraceStore::io_rate_series(
    SimTime bucket_width) const {
  std::vector<std::pair<SimTime, Bytes>> series;
  if (events_.empty() || bucket_width <= 0) {
    return series;
  }
  SimTime lo = events_.front().event.local_start;
  SimTime hi = lo;
  for (const StoredEvent& stored : events_) {
    lo = std::min(lo, stored.event.local_start);
    hi = std::max(hi, stored.event.local_start);
  }
  const auto buckets =
      static_cast<std::size_t>((hi - lo) / bucket_width) + 1;
  std::vector<Bytes> sums(buckets, 0);
  for (const StoredEvent& stored : events_) {
    const trace::TraceEvent& ev = stored.event;
    if (ev.cls == trace::EventClass::kSyscall &&
        (ev.name == "SYS_write" || ev.name == "SYS_read")) {
      sums[static_cast<std::size_t>((ev.local_start - lo) / bucket_width)] +=
          ev.bytes;
    }
  }
  series.reserve(buckets);
  for (std::size_t i = 0; i < buckets; ++i) {
    series.emplace_back(lo + static_cast<SimTime>(i) * bucket_width, sums[i]);
  }
  return series;
}

std::vector<FileHeat> UnifiedTraceStore::hottest_files(
    std::size_t limit) const {
  struct Tally {
    FileHeat heat;
    Bytes lib_bytes = 0;
    Bytes lower_bytes = 0;  // syscall + VFS views of the same transfers
  };
  std::map<std::string, Tally> by_path;
  std::map<int, std::string> fd_paths;  // best-effort fd -> path
  for (const StoredEvent& stored : events_) {
    const trace::TraceEvent& ev = stored.event;
    if (!ev.path.empty() && ev.fd >= 0) {
      fd_paths[ev.fd] = ev.path;
    }
    if (!ev.is_io_call() || ev.bytes <= 0) {
      continue;
    }
    std::string path = ev.path;
    if (path.empty() && ev.fd >= 0) {
      const auto it = fd_paths.find(ev.fd);
      if (it != fd_paths.end()) {
        path = it->second;
      }
    }
    if (path.empty()) {
      path = "(unknown)";
    }
    Tally& tally = by_path[path];
    tally.heat.path = path;
    ++tally.heat.ops;
    // Library wrappers and the syscalls beneath them report the same
    // transfer; take whichever view saw more (captures lib-only traces
    // like //TRACE's without double counting ltrace's dual view).
    if (ev.cls == trace::EventClass::kLibraryCall) {
      tally.lib_bytes += ev.bytes;
    } else {
      tally.lower_bytes += ev.bytes;
    }
  }
  std::vector<FileHeat> out;
  out.reserve(by_path.size());
  for (auto& [path, tally] : by_path) {
    tally.heat.bytes = std::max(tally.lib_bytes, tally.lower_bytes);
    out.push_back(std::move(tally.heat));
  }
  std::sort(out.begin(), out.end(), [](const FileHeat& a, const FileHeat& b) {
    return a.bytes > b.bytes;
  });
  if (out.size() > limit) {
    out.resize(limit);
  }
  return out;
}

}  // namespace iotaxo::analysis
