#include "analysis/aggregate_timing.h"

#include <map>

#include "util/strings.h"

namespace iotaxo::analysis {

std::string render_aggregate_timing(
    const std::vector<trace::TraceEvent>& barrier_events,
    const std::string& cmdline) {
  // Group barrier events by label (stored in .path by the runtime).
  std::map<std::string, std::vector<const trace::TraceEvent*>> by_label;
  std::vector<std::string> order;
  for (const trace::TraceEvent& ev : barrier_events) {
    auto& bucket = by_label[ev.path];
    if (bucket.empty()) {
      order.push_back(ev.path);
    }
    bucket.push_back(&ev);
  }

  std::string quoted_cmd;
  for (const std::string& part : split_ws(cmdline)) {
    if (quoted_cmd.empty()) {
      quoted_cmd = part;  // the executable itself is unquoted
    } else {
      quoted_cmd += " \"" + part + "\"";
    }
  }

  std::string out;
  for (const std::string& label : order) {
    out += strprintf("# Barrier %s %s\n", label.c_str(), quoted_cmd.c_str());
    for (const trace::TraceEvent* ev : by_label[label]) {
      const double enter = to_seconds(ev->local_start);
      const double exit = to_seconds(ev->local_start + ev->duration);
      out += strprintf("%d: %s (%u) Entered barrier at %.6f\n", ev->rank,
                       ev->host.c_str(), ev->pid, enter);
      out += strprintf("%d: %s (%u) Exited barrier at %.6f\n", ev->rank,
                       ev->host.c_str(), ev->pid, exit);
    }
  }
  return out;
}

}  // namespace iotaxo::analysis
