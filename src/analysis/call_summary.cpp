#include "analysis/call_summary.h"

#include "util/strings.h"

namespace iotaxo::analysis {

std::string render_call_summary(
    const std::map<std::string, trace::SummarySink::Entry>& summary) {
  std::string out;
  out += "#                     SUMMARY COUNT OF TRACED CALL(S)\n";
  out += "#  Function Name            Number of Calls            Total time (s)\n";
  out +=
      "============================================================================="
      "\n";
  for (const auto& [name, entry] : summary) {
    out += strprintf("   %-24s %15lld %25.6f\n", name.c_str(), entry.count,
                     to_seconds(entry.total_duration));
  }
  return out;
}

SimTime total_time_of(const trace::TraceBundle& bundle,
                      const std::string& call_name) {
  const auto it = bundle.call_summary.find(call_name);
  return it == bundle.call_summary.end() ? 0 : it->second.total_duration;
}

}  // namespace iotaxo::analysis
