// Bandwidth and overhead arithmetic — the quantitative half of the
// taxonomy (§3.1 "Elapsed time overhead" and the Figures 2-4 bandwidth
// overhead measurements).
#pragma once

#include <map>
#include <string>

#include "mpi/runtime.h"
#include "util/types.h"

namespace iotaxo::analysis {

/// The paper's elapsed-time overhead formula:
///   (elapsed traced - elapsed untraced) / elapsed untraced.
[[nodiscard]] double elapsed_time_overhead(SimTime traced,
                                           SimTime untraced) noexcept;

/// Aggregate bandwidth in MiB/s over a time window.
[[nodiscard]] double bandwidth_mibps(Bytes bytes, SimTime window) noexcept;

/// Bandwidth overhead expressed as slowdown of the traced run:
///   bw_untraced / bw_traced - 1 == (t_traced - t_untraced) / t_untraced
/// for equal byte counts.
[[nodiscard]] double bandwidth_overhead(double bw_untraced,
                                        double bw_traced) noexcept;

/// Extract the I/O window [release("io_begin"), release("io_end")] from a
/// run result. Throws FormatError if the workload didn't label its phase
/// barriers.
[[nodiscard]] SimTime io_window(const mpi::RunResult& run);

/// Bandwidth of a run's I/O phase (written bytes over the barrier window).
[[nodiscard]] double io_phase_bandwidth_mibps(const mpi::RunResult& run);

}  // namespace iotaxo::analysis
