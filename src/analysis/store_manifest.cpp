#include "analysis/store_manifest.h"

#include <cstring>
#include <filesystem>
#include <fstream>

#include "trace/binary_format.h"
#include "util/crc32.h"
#include "util/error.h"

namespace iotaxo::analysis {

namespace {

constexpr char kMagic[6] = {'I', 'O', 'T', 'M', '1', '\n'};

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] std::size_t pos() const noexcept { return pos_; }
  [[nodiscard]] bool at_end() const noexcept { return pos_ == data_.size(); }

  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  std::string str() {
    const std::uint32_t len = u32();
    need(len);
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), len);
    pos_ += len;
    return s;
  }

 private:
  void need(std::size_t n) const {
    if (data_.size() - pos_ < n) {
      throw FormatError("store manifest: truncated");
    }
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace

std::vector<std::uint8_t> StoreManifest::encode() const {
  std::vector<std::uint8_t> out;
  out.insert(out.end(), kMagic, kMagic + 6);
  put_u64(out, next_seq);
  put_u32(out, static_cast<std::uint32_t>(entries.size()));
  for (const ManifestEntry& e : entries) {
    put_u32(out, static_cast<std::uint32_t>(e.name.size()));
    out.insert(out.end(), e.name.begin(), e.name.end());
    put_u64(out, e.size);
    put_u32(out, e.crc);
    put_u64(out, e.seq);
  }
  put_u32(out, crc32(std::span<const std::uint8_t>(out)));
  return out;
}

StoreManifest StoreManifest::decode(std::span<const std::uint8_t> data) {
  if (data.size() < 6 + 8 + 4 + 4 ||
      std::memcmp(data.data(), kMagic, 6) != 0) {
    throw FormatError("store manifest: bad magic");
  }
  // The sealing CRC covers everything before it — verify before trusting
  // any count or length field.
  std::uint32_t sealed = 0;
  for (int i = 0; i < 4; ++i) {
    sealed |= static_cast<std::uint32_t>(data[data.size() - 4 + i]) << (8 * i);
  }
  if (crc32(data.subspan(0, data.size() - 4)) != sealed) {
    throw FormatError("store manifest: CRC mismatch");
  }
  Reader r(data.subspan(6, data.size() - 6 - 4));
  StoreManifest m;
  m.next_seq = r.u64();
  const std::uint32_t nfiles = r.u32();
  m.entries.reserve(std::min<std::uint32_t>(nfiles, 4096));
  for (std::uint32_t i = 0; i < nfiles; ++i) {
    ManifestEntry e;
    e.name = r.str();
    e.size = r.u64();
    e.crc = r.u32();
    e.seq = r.u64();
    m.entries.push_back(std::move(e));
  }
  if (!r.at_end()) {
    throw FormatError("store manifest: trailing bytes");
  }
  return m;
}

std::optional<StoreManifest> StoreManifest::load(
    const std::string& directory) {
  const std::string path = directory + "/" + std::string(kManifestFileName);
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return std::nullopt;
  }
  std::vector<std::uint8_t> bytes{std::istreambuf_iterator<char>(in),
                                  std::istreambuf_iterator<char>()};
  if (in.bad()) {
    throw IoError("cannot read store manifest '" + path + "'");
  }
  return decode(bytes);
}

void StoreManifest::store(const std::string& directory) const {
  const std::string path = directory + "/" + std::string(kManifestFileName);
  trace::write_binary_file(path, encode(), "store.manifest");
}

const ManifestEntry* StoreManifest::find(std::string_view name) const {
  for (const ManifestEntry& e : entries) {
    if (e.name == name) {
      return &e;
    }
  }
  return nullptr;
}

}  // namespace iotaxo::analysis
