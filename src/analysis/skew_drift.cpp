#include "analysis/skew_drift.h"

#include <algorithm>

#include "util/error.h"
#include "util/strings.h"

namespace iotaxo::analysis {

SkewDriftModel SkewDriftModel::fit(
    const std::vector<trace::TraceEvent>& probes) {
  std::map<int, SimTime> pre;
  std::map<int, SimTime> post;
  for (const trace::TraceEvent& ev : probes) {
    if (ev.cls != trace::EventClass::kClockProbe || ev.args.empty()) {
      continue;
    }
    const std::string& label = ev.args[0];
    if (label == "pre_sync") {
      pre[ev.rank] = ev.local_start;
    } else if (label == "post_sync") {
      post[ev.rank] = ev.local_start;
    }
  }
  if (pre.empty()) {
    throw FormatError("skew/drift fit: no pre_sync probes");
  }
  for (const auto& [rank, t] : pre) {
    if (!post.contains(rank)) {
      throw FormatError(
          strprintf("skew/drift fit: rank %d lacks a post_sync probe", rank));
    }
  }

  SkewDriftModel model;
  // Fleet means define the reference timeline.
  long double sum_pre = 0.0L;
  long double sum_delta = 0.0L;
  for (const auto& [rank, t] : pre) {
    sum_pre += static_cast<long double>(t);
    sum_delta += static_cast<long double>(post.at(rank) - t);
  }
  const auto n = static_cast<long double>(pre.size());
  const SimTime mean_pre = static_cast<SimTime>(sum_pre / n);
  const long double mean_delta = sum_delta / n;

  SimTime min_off = 0;
  SimTime max_off = 0;
  bool first = true;
  for (const auto& [rank, t] : pre) {
    ClockEstimate est;
    est.offset = t - mean_pre;
    const long double delta = static_cast<long double>(post.at(rank) - t);
    est.drift_ppm =
        mean_delta > 0 ? static_cast<double>((delta / mean_delta - 1.0L) * 1e6)
                       : 0.0;
    model.estimates_[rank] = est;
    model.pre_reading_[rank] = t;
    if (first) {
      min_off = max_off = est.offset;
      first = false;
    } else {
      min_off = std::min(min_off, est.offset);
      max_off = std::max(max_off, est.offset);
    }
  }
  model.mean_pre_ = mean_pre;
  model.max_skew_ = max_off - min_off;
  return model;
}

const ClockEstimate& SkewDriftModel::estimate(int rank) const {
  const auto it = estimates_.find(rank);
  if (it == estimates_.end()) {
    throw FormatError(strprintf("skew/drift: no estimate for rank %d", rank));
  }
  return it->second;
}

SimTime SkewDriftModel::correct(int rank, SimTime local_time) const {
  const ClockEstimate& est = estimate(rank);
  const SimTime anchor = pre_reading_.at(rank);
  const long double elapsed_local =
      static_cast<long double>(local_time - anchor);
  const long double rate = 1.0L + static_cast<long double>(est.drift_ppm) * 1e-6L;
  const long double elapsed_ref = elapsed_local / rate;
  return mean_pre_ + static_cast<SimTime>(elapsed_ref);
}

}  // namespace iotaxo::analysis
