// Trace comparison for replay-fidelity verification (§3.1 "Trace replay
// fidelity": "trace both the pseudo-application and the original
// application and compare the traces generated", plus end-to-end runtime
// comparison "using a utility such as time").
#pragma once

#include <string>

#include "trace/bundle.h"
#include "util/types.h"

namespace iotaxo::analysis {

struct FidelityReport {
  /// |replay elapsed - original elapsed| / original elapsed.
  double runtime_error = 0.0;
  /// L1 distance between per-call-name count histograms, normalized by the
  /// original's total count (0 = identical op mix).
  double op_mix_error = 0.0;
  /// Fraction of original I/O bytes reproduced (1 = exact).
  double byte_ratio = 0.0;
  /// 1 - normalized-LCS similarity of per-rank call-name sequences,
  /// averaged over ranks present in both traces (0 = identical order).
  double sequence_error = 0.0;

  [[nodiscard]] std::string summary() const;
};

/// Compare a replay against the original capture.
[[nodiscard]] FidelityReport compare_traces(const trace::TraceBundle& original,
                                            const trace::TraceBundle& replay,
                                            SimTime original_elapsed,
                                            SimTime replay_elapsed);

/// Normalized LCS similarity of two sequences of call names in [0, 1].
[[nodiscard]] double sequence_similarity(
    const std::vector<std::string>& a, const std::vector<std::string>& b);

}  // namespace iotaxo::analysis
