// DFG mining over a 32-source store — the PR 4 gates:
//
//   1. Parallel per-pool graph construction must take the builder thread
//      >= 2x off the serial scan on a 32-source store. The gated metric is
//      the *builder-visible* cost measured with the calling thread's CPU
//      clock (CLOCK_THREAD_CPUTIME_ID) — the same discipline as
//      bench_async_flush: per-pool partials move onto pool workers and the
//      builder thread only dispatches and merges, so its CPU charge is
//      what an interactive analysis session or service front end actually
//      pays, and the number stays meaningful on any core count (wall time
//      would fold the workers' time slices into the builder's number on a
//      small machine). Wall-clock times are reported alongside, ungated.
//   2. The merged graphs must be bit-identical: serial == parallel at
//      several thread counts, owned-batch == zero-copy view source, and
//      pre- == post-compact() — the determinism the subsystem guarantees.
//   3. `iotaxo dfg` consumes the same containers, so the graphs minted
//      here are what the CLI reports.
//
// Emits BENCH_dfg.json; floors live next to the measured values (*_floor
// keys) so tools/check_build.sh --bench reads thresholds from the
// artifact.
#include <ctime>

#include <cstdio>
#include <string>
#include <vector>

#include "analysis/dfg/dfg.h"
#include "analysis/unified_store.h"
#include "bench_common.h"
#include "trace/binary_format.h"
#include "trace/event_batch.h"
#include "util/strings.h"

namespace {

using namespace iotaxo;
using analysis::UnifiedTraceStore;
using analysis::dfg::Dfg;
using analysis::dfg::DfgBuilder;
using analysis::dfg::DfgOptions;
using trace::EventBatch;
using trace::TraceEvent;

constexpr std::size_t kEvents = 200'000;
constexpr int kRanks = 32;
constexpr std::size_t kStoreSources = 32;
constexpr int kRepetitions = 5;
constexpr std::size_t kParallelThreads = 4;

constexpr double kOffloadFloor = 2.0;

/// The same capture-shaped stream the other pipeline benches use; event i
/// sits at i microseconds so the 32 sources occupy disjoint time eras.
[[nodiscard]] std::vector<TraceEvent> synth_events() {
  static const char* kNames[] = {"SYS_write", "SYS_read",  "SYS_lseek",
                                 "SYS_open",  "SYS_close", "MPI_File_write_at",
                                 "write",     "read"};
  std::vector<TraceEvent> events;
  events.reserve(kEvents);
  for (std::size_t i = 0; i < kEvents; ++i) {
    TraceEvent ev = trace::make_syscall(
        kNames[i % (sizeof(kNames) / sizeof(kNames[0]))],
        {"5", "65536", strprintf("%zu", (i % 4096) * 65536)}, 65536);
    ev.rank = static_cast<int>(i % kRanks);
    ev.node = ev.rank;
    ev.pid = 10000 + static_cast<std::uint32_t>(ev.rank);
    ev.host = strprintf("host%02d.lanl.gov", ev.rank);
    ev.path = ev.rank % 2 == 0 ? "/pfs/shared/out.dat" : "/pfs/rank/out.dat";
    ev.fd = 5;
    ev.bytes = 65536;
    ev.offset = static_cast<Bytes>(i % 4096) * 65536;
    ev.local_start = static_cast<SimTime>(i) * kMicrosecond;
    ev.duration = 3 * kMicrosecond;
    events.push_back(std::move(ev));
  }
  return events;
}

[[nodiscard]] double thread_cpu_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

[[nodiscard]] double wall_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

struct Timed {
  double cpu = 1e100;   // best-of-k builder-thread CPU seconds
  double wall = 1e100;  // best-of-k wall seconds
};

[[nodiscard]] Timed best_build(const UnifiedTraceStore& store,
                               std::size_t threads, Dfg* out) {
  const DfgBuilder builder(store);
  DfgOptions options;
  options.threads = threads;
  Timed best;
  for (int r = 0; r < kRepetitions; ++r) {
    const double w0 = wall_seconds();
    const double c0 = thread_cpu_seconds();
    Dfg dfg = builder.build(options);
    const double cpu = thread_cpu_seconds() - c0;
    const double wall = wall_seconds() - w0;
    if (cpu < best.cpu) {
      best.cpu = cpu;
    }
    if (wall < best.wall) {
      best.wall = wall;
    }
    *out = std::move(dfg);
  }
  return best;
}

void write_file(const std::string& path, const std::vector<std::uint8_t>& b) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr || std::fwrite(b.data(), 1, b.size(), f) != b.size()) {
    std::fprintf(stderr, "FAIL: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fclose(f);
}

}  // namespace

int main() {
  const std::vector<TraceEvent> events = synth_events();

  // A 32-source store of owned batches (the long-lived-service shape) ...
  UnifiedTraceStore store;
  const std::size_t chunk = kEvents / kStoreSources;
  for (std::size_t s = 0; s < kStoreSources; ++s) {
    EventBatch source;
    const std::size_t begin = s * chunk;
    const std::size_t end = s + 1 == kStoreSources ? kEvents : begin + chunk;
    for (std::size_t i = begin; i < end; ++i) {
      source.append(events[i]);
    }
    store.ingest(source, {{"framework", "bench"},
                          {"application", strprintf("era%zu", s)}});
  }
  // ... and the same records as one zero-copy container source.
  const std::string view_path = "bench_dfg.iotb";
  write_file(view_path,
             trace::encode_binary_v2(EventBatch::from_events(events),
                                     trace::BinaryOptions{}));
  UnifiedTraceStore view_store;
  view_store.ingest_view(view_path, {{"framework", "bench"},
                                     {"application", "view"}});

  // --- gate 1: builder-thread offload, serial vs parallel ------------------
  Dfg serial_dfg;
  const Timed serial = best_build(store, 1, &serial_dfg);
  Dfg parallel_dfg;
  const Timed parallel = best_build(store, kParallelThreads, &parallel_dfg);
  const double offload_speedup = serial.cpu / parallel.cpu;

  // --- gate 2: determinism across thread counts, source kinds, compaction --
  const bool parallel_identical = serial_dfg == parallel_dfg;
  Dfg two_thread_dfg;
  (void)best_build(store, 2, &two_thread_dfg);
  const bool two_thread_identical = serial_dfg == two_thread_dfg;

  Dfg view_dfg;
  (void)best_build(view_store, 1, &view_dfg);
  const bool view_identical = serial_dfg == view_dfg;

  const std::size_t pools_before = store.pool_count();
  const std::size_t pools_after = store.compact(8 * kMiB);
  Dfg compacted_dfg;
  (void)best_build(store, 1, &compacted_dfg);
  const bool compact_identical =
      serial_dfg == compacted_dfg && pools_after < pools_before;

  std::remove(view_path.c_str());

  // Store shape through the introspection accessor (what fed the miner).
  long long store_records = 0;
  for (const analysis::StorePoolInfo& info : view_store.pool_infos()) {
    store_records += info.records;
  }

  const bool pass = parallel_identical && two_thread_identical &&
                    view_identical && compact_identical &&
                    offload_speedup >= kOffloadFloor;

  // --- armed replay for the embedded metrics object ------------------------
  // The gated builds above ran disarmed; one armed pass over the store's
  // aggregate queries feeds the artifact's "metrics" object.
  const obs::MetricsSnapshot metrics_before = bench::metrics_baseline();
  (void)store.call_stats();
  (void)store.hottest_files(10);
  const std::string metrics_json = bench::metrics_delta_json(metrics_before);

  const std::string json = strprintf(
      "{\n"
      "  \"bench\": \"dfg\",\n"
      "  \"events\": %zu,\n"
      "  \"store_sources\": %zu,\n"
      "  \"ranks\": %zu,\n"
      "  \"records_viewed\": %lld,\n"
      "  \"dfg_offload_speedup\": %.2f,\n"
      "  \"dfg_offload_speedup_floor\": %.1f,\n"
      "  \"serial_build_cpu_ms\": %.2f,\n"
      "  \"parallel_build_cpu_ms\": %.2f,\n"
      "  \"serial_build_wall_ms\": %.2f,\n"
      "  \"parallel_build_wall_ms\": %.2f,\n"
      "  \"parallel_identical\": %s,\n"
      "  \"view_identical\": %s,\n"
      "  \"compaction_identical\": %s,\n"
      "  \"metrics\": %s\n"
      "}\n",
      kEvents, kStoreSources, serial_dfg.ranks.size(), store_records,
      offload_speedup, kOffloadFloor, serial.cpu * 1e3, parallel.cpu * 1e3,
      serial.wall * 1e3, parallel.wall * 1e3,
      (parallel_identical && two_thread_identical) ? "true" : "false",
      view_identical ? "true" : "false",
      compact_identical ? "true" : "false", metrics_json.c_str());

  std::printf("=== bench_dfg ===\n");
  std::printf("mined     %zu rank graphs from %zu sources (%zu events)\n",
              serial_dfg.ranks.size(), kStoreSources, kEvents);
  std::printf("offload   builder-thread CPU %.2fx serial (floor %.1fx) | "
              "serial %.2f ms cpu, parallel %.2f ms cpu (%zu workers)\n",
              offload_speedup, kOffloadFloor, serial.cpu * 1e3,
              parallel.cpu * 1e3, kParallelThreads);
  std::printf("wall      serial %.2f ms, parallel %.2f ms (ungated; tracks "
              "core count)\n",
              serial.wall * 1e3, parallel.wall * 1e3);
  std::printf("identity  parallel=%s two-thread=%s view=%s compacted=%s "
              "(%zu -> %zu pools)\n",
              parallel_identical ? "yes" : "no",
              two_thread_identical ? "yes" : "no",
              view_identical ? "yes" : "no",
              compact_identical ? "yes" : "no", pools_before, pools_after);
  std::printf("BENCH_JSON_BEGIN\n%sBENCH_JSON_END\n", json.c_str());

  if (std::FILE* f = std::fopen("BENCH_dfg.json", "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
  }
  if (!pass) {
    std::fprintf(stderr,
                 "FAIL: dfg gates (offload %.2fx >= %.1fx: %d, identical "
                 "parallel=%d two=%d view=%d compact=%d)\n",
                 offload_speedup, kOffloadFloor,
                 offload_speedup >= kOffloadFloor, parallel_identical,
                 two_thread_identical, view_identical, compact_identical);
    return 1;
  }
  return 0;
}
