// Shared driver for the Figure 2/3/4 benches: one access pattern, a block-
// size sweep of mpi_io_test under LANL-Trace, printed as the figure's series.
#pragma once

#include "bench_common.h"
#include "util/ascii_chart.h"

namespace iotaxo::bench {

inline int run_figure_bench(workload::Pattern pattern,
                            const std::string& title,
                            const std::string& paper_ref,
                            const std::string& shape_note,
                            double min_bw_growth = 2.0) {
  print_header(title, paper_ref);

  const sim::Cluster cluster = paper_cluster();
  taxonomy::OverheadHarness harness(cluster, pfs_factory());
  frameworks::LanlTrace lanl;

  workload::MpiIoTestParams base;
  base.pattern = pattern;
  base.nranks = 32;
  base.total_bytes =
      pattern == workload::Pattern::kNtoN ? kScaledTotalNN : kScaledTotalN1;

  const auto points = harness.sweep_block_sizes(
      lanl, base, taxonomy::figure_block_sizes());
  print_sweep(points);

  // The figure itself: bandwidth (traced & untraced) vs block size.
  ChartSeries untraced{"untraced", 'o', {}};
  ChartSeries traced{"traced", '*', {}};
  ChartOptions chart;
  chart.y_label = "aggregate bandwidth (MiB/s)";
  for (const taxonomy::OverheadPoint& p : points) {
    untraced.values.push_back(p.bw_untraced_mibps);
    traced.values.push_back(p.bw_traced_mibps);
    chart.x_labels.push_back(format_bytes(p.block));
  }
  // Keep every other x label to avoid overlap.
  std::vector<std::string> sparse;
  for (std::size_t i = 0; i < chart.x_labels.size(); i += 2) {
    sparse.push_back(chart.x_labels[i]);
  }
  chart.x_labels = std::move(sparse);
  std::printf("\n%s", render_chart({untraced, traced}, chart).c_str());

  std::printf("\nShape check: %s\n", shape_note.c_str());

  // Self-check the figure's qualitative claims.
  bool monotone = true;
  for (std::size_t i = 1; i < points.size(); ++i) {
    monotone = monotone && points[i].bandwidth_overhead <=
                               points[i - 1].bandwidth_overhead * 1.02;
  }
  std::printf("Bandwidth overhead monotone non-increasing in block size: %s\n",
              monotone ? "YES" : "NO");
  const bool bw_grows = points.back().bw_untraced_mibps >
                        points.front().bw_untraced_mibps * min_bw_growth;
  std::printf("Untraced bandwidth grows with block size (saturating): %s\n",
              bw_grows ? "YES" : "NO");
  return monotone && bw_grows ? 0 : 1;
}

}  // namespace iotaxo::bench
