// Tracefs elapsed-time overhead versus trace granularity (§2.2/§4.2):
// "Tracefs manifests up to 12.4% elapsed time overhead for tracing all
// file system operations on an I/O intensive workload, and additional
// overhead for advanced features such as encryption and checksum
// calculation" — with the declarative filter language controlling how much
// is captured.
#include "bench_common.h"
#include "frameworks/tracefs.h"
#include "workload/io_intensive.h"

using namespace iotaxo;

namespace {

struct Level {
  const char* name;
  const char* filter;
  bool checksum;
  bool encrypt;
  bool aggregate;
};

}  // namespace

int main() {
  bench::print_header(
      "Tracefs overhead vs granularity",
      "Konwinski et al., SC'07, §2.2/§4.2 (<= 12.4% for full tracing; more "
      "for checksum/encryption)");

  sim::ClusterParams cparams;
  cparams.node_count = 4;
  const sim::Cluster cluster(cparams);
  taxonomy::OverheadHarness harness(cluster, bench::local_factory());

  workload::IoIntensiveParams app;
  app.nranks = 1;
  app.files_per_rank = 2000;
  const mpi::Job job = workload::make_io_intensive(app);

  const std::vector<Level> levels = {
      {"off (filter: none)", "none", false, false, false},
      {"aggregation counters only", "", false, false, true},
      {"metadata ops only", "metadata", false, false, false},
      {"data ops only", "data", false, false, false},
      {"large writes only (>= 64 KiB)", "data and bytes >= 65536", false,
       false, false},
      {"all operations", "", false, false, false},
      {"all + checksumming", "", true, false, false},
      {"all + checksum + encryption", "", true, true, false},
  };

  TextTable table({"Granularity", "Events", "Elapsed overhead"});
  table.set_align(1, Align::kRight);
  table.set_align(2, Align::kRight);

  double full_overhead = 0.0;
  double fancy_overhead = 0.0;
  std::vector<double> overheads;
  for (const Level& level : levels) {
    frameworks::TracefsParams params;
    params.filter = level.filter;
    params.shim.checksum = level.checksum;
    params.shim.encrypt = level.encrypt;
    params.shim.aggregate_only = level.aggregate;
    frameworks::Tracefs tracefs(params);
    const taxonomy::OverheadPoint p = harness.measure(tracefs, job);
    overheads.push_back(p.elapsed_overhead);
    if (std::string(level.name) == "all operations") {
      full_overhead = p.elapsed_overhead;
    }
    if (level.encrypt) {
      fancy_overhead = p.elapsed_overhead;
    }
    table.add_row({level.name, strprintf("%lld", p.events),
                   format_pct(p.elapsed_overhead)});
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf("\nPaper bound for full tracing: <= 12.4%%; measured: %s\n",
              format_pct(full_overhead).c_str());
  std::printf("Advanced features add overhead (paper: 'additional overhead "
              "for advanced features'): full %s -> +checksum+encryption %s\n",
              format_pct(full_overhead).c_str(),
              format_pct(fancy_overhead).c_str());

  const bool ok = full_overhead < 0.124 * 1.3 &&
                  fancy_overhead > full_overhead &&
                  overheads.front() < overheads[5];
  return ok ? 0 : 1;
}
