// Table 1: the taxonomy's summary-table template — "An I/O Tracing
// Framework summary table. The classification features and overhead
// measurements of any I/O Tracing Framework can be summarized for quick
// reference and comparison to other Frameworks."
#include <cstdio>

#include "taxonomy/classification.h"

int main() {
  std::printf("\n=== Table 1 — summary table template ===\n");
  std::printf("Reproduces: Konwinski et al., SC'07, Table 1\n\n");
  const std::string table = iotaxo::taxonomy::render_table1_template();
  std::fputs(table.c_str(), stdout);

  // Sanity: all 13 features present.
  int missing = 0;
  for (const auto id : iotaxo::taxonomy::all_features()) {
    if (table.find(iotaxo::taxonomy::feature_name(id)) == std::string::npos) {
      ++missing;
    }
  }
  return missing == 0 ? 0 : 1;
}
