// Figure 1: "Sample output from LANL-Trace ... the raw trace data collected
// from each node, as well as aggregate timing and function call
// information." This bench regenerates all three output blocks from an
// actual traced run of mpi_io_test.
#include "bench_common.h"
#include "analysis/aggregate_timing.h"
#include "analysis/call_summary.h"
#include "trace/text_format.h"

using namespace iotaxo;

int main() {
  bench::print_header("Figure 1 — the three LANL-Trace output types",
                      "Konwinski et al., SC'07, Figure 1");

  sim::ClusterParams cparams;
  cparams.node_count = 8;
  const sim::Cluster cluster(cparams);

  workload::MpiIoTestParams params;
  params.pattern = workload::Pattern::kNto1Strided;
  params.nranks = 8;
  params.block = 32 * kKiB;  // "-size 32768" as in the figure
  params.total_bytes = 32 * kMiB;
  params.nobj = 1;

  frameworks::LanlTrace lanl;
  frameworks::TraceJobOptions options;
  options.store_raw_streams = true;
  const frameworks::TraceRunResult result =
      lanl.trace(cluster, workload::make_mpi_io_test(params),
                 std::make_shared<pfs::Pfs>(), options);

  std::printf("Raw Trace Data (first lines of rank 7's stream)\n");
  std::printf("-----------------------------------------------\n");
  const trace::RankStream& rs = result.bundle.ranks.back();
  int lines = 0;
  for (const trace::TraceEvent& ev : rs.events) {
    std::printf("%s\n", trace::TextTraceWriter::line(ev).c_str());
    if (++lines >= 8) {
      break;
    }
  }
  std::printf("...\n\n");

  std::printf("Aggregate Timing Information (excerpt)\n");
  std::printf("--------------------------------------\n");
  const std::string timing = analysis::render_aggregate_timing(
      result.bundle.barrier_events, result.bundle.metadata.at("application"));
  // Print the first barrier group only.
  std::size_t second_group = timing.find("# Barrier", 1);
  std::fputs(timing.substr(0, second_group == std::string::npos
                                  ? timing.size()
                                  : second_group)
                 .c_str(),
             stdout);
  std::printf("...\n\n");

  std::printf("Call Summary\n");
  std::printf("------------\n");
  std::fputs(analysis::render_call_summary(result.bundle).c_str(), stdout);

  // Self-checks: the three blocks carry the figure's signature content.
  const bool raw_ok = !rs.events.empty();
  const bool timing_ok = timing.find("Entered barrier at") != std::string::npos;
  const std::string summary = analysis::render_call_summary(result.bundle);
  const bool summary_ok =
      summary.find("MPI_Barrier") != std::string::npos &&
      summary.find("SYS_write") != std::string::npos;
  return raw_ok && timing_ok && summary_ok ? 0 : 1;
}
