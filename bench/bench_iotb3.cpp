// IOTB3 block containers: per-block compression/CRC, the footer mini-index
// skips, and the SIMD scan kernels — the PR 6 gates:
//
//   1. A dashboard-shaped mix of narrow windowed queries against a
//      compressed IOTB3 store must run within 2x of the same mix against an
//      uncompressed mmap'd IOTB2 store (ratio >= 0.5): compression may not
//      make interactive probes pathologically slow, because the block index
//      confines decompression to the blocks a window actually touches and
//      decoded blocks stay cached.
//   2. On the block-backed store, the narrow-probe mix must run >= 3x
//      faster with the per-block index skips than with
//      set_use_indexes(false). Stores are rebuilt fresh for every
//      repetition — the decoded-block cache would otherwise let the second
//      repetition of the unindexed run coast on blocks the first one paid
//      for, flattering the losing side.
//   3. A full first-touch scan of a checksummed, uncompressed IOTB3 view
//      must run within 1.5x of the unchecksummed one (ratio >= 0.667): the
//      slice-by-8 CRC pass is a small tax, not a second decode. Fresh
//      views per repetition, since CRCs are verified once per block.
//   4. Hard identity gates: all aggregate queries must be bit-identical
//      across an owned ingest, a v2 view store, a v3 block store
//      (compressed + checksummed) and a cold-compacted store.
//
// Emits BENCH_iotb3.json; floors live next to the measured values
// (*_floor keys) for tools/check_build.sh --bench.
#include <chrono>
#include <cstdio>
#include <string>
#include <tuple>
#include <vector>

#include "analysis/unified_store.h"
#include "trace/binary_format.h"
#include "trace/block_view.h"
#include "trace/event_batch.h"
#include "trace/record_view.h"
#include "util/strings.h"

namespace {

using namespace iotaxo;
using trace::BlockView;
using trace::EventBatch;
using trace::RecordView;
using trace::TraceEvent;

constexpr std::size_t kEvents = 1'000'000;
constexpr int kRanks = 32;
constexpr int kRepetitions = 3;
constexpr int kWindowProbes = 16;

constexpr double kCompressedRatioFloor = 0.5;   // within 2x of mmap
constexpr double kBlockSkipFloor = 3.0;
constexpr double kChecksumRatioFloor = 0.667;   // within 1.5x of unchecked

/// The capture-shaped stream the other benches use; event i sits at i
/// microseconds so time windows map cleanly onto blocks.
[[nodiscard]] std::vector<TraceEvent> synth_events() {
  static const char* kNames[] = {"SYS_write", "SYS_read",  "SYS_lseek",
                                 "SYS_open",  "SYS_close", "MPI_File_write_at",
                                 "write",     "read"};
  std::vector<TraceEvent> events;
  events.reserve(kEvents);
  for (std::size_t i = 0; i < kEvents; ++i) {
    TraceEvent ev = trace::make_syscall(
        kNames[i % (sizeof(kNames) / sizeof(kNames[0]))],
        {"5", "65536", strprintf("%zu", (i % 4096) * 65536)}, 65536);
    ev.rank = static_cast<int>(i % kRanks);
    ev.node = ev.rank;
    ev.pid = 10000 + static_cast<std::uint32_t>(ev.rank);
    ev.host = strprintf("host%02d.lanl.gov", ev.rank);
    ev.path = ev.rank % 2 == 0 ? "/pfs/shared/out.dat" : "/pfs/rank/out.dat";
    ev.fd = 5;
    ev.bytes = 65536;
    ev.offset = static_cast<Bytes>(i % 4096) * 65536;
    ev.local_start = static_cast<SimTime>(i) * kMicrosecond;
    ev.duration = 3 * kMicrosecond;
    events.push_back(std::move(ev));
  }
  return events;
}

template <class Fn>
[[nodiscard]] double best_seconds(Fn&& fn) {
  double best = 1e100;
  for (int r = 0; r < kRepetitions; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

void write_file(const std::string& path, const std::vector<std::uint8_t>& b) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr || std::fwrite(b.data(), 1, b.size(), f) != b.size()) {
    std::fprintf(stderr, "FAIL: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fclose(f);
}

constexpr SimTime kSpan = static_cast<SimTime>(kEvents) * kMicrosecond;

/// Narrow probes into scattered eras: each window covers ~1/64 of the
/// span, so an indexed block-backed store decompresses only the few
/// blocks each window overlaps.
template <class Store>
[[nodiscard]] Bytes narrow_probes(const Store& store) {
  Bytes total = 0;
  for (int w = 0; w < kWindowProbes; ++w) {
    const SimTime begin = (static_cast<SimTime>(w) * 7 % 61) * (kSpan / 64);
    total += store.bytes_in_window(begin, begin + kSpan / 64);
  }
  return total;
}

[[nodiscard]] analysis::UnifiedTraceStore open_store(const std::string& path) {
  analysis::UnifiedTraceStore store;
  store.ingest_view(path, {{"framework", "bench"}});
  store.set_query_threads(1);
  return store;
}

/// The full-touch scan both checksum variants run: fold every record's
/// duration and write-call bytes through the block decode path.
[[nodiscard]] std::pair<long long, Bytes> scan_blocks(const BlockView& view) {
  long long writes = 0;
  Bytes bytes = 0;
  const trace::StrId w = view.find_string("SYS_write").value_or(0);
  view.for_each([&](std::size_t, const RecordView& rec, std::uint32_t) {
    if (rec.cls() == trace::EventClass::kSyscall && w != 0 &&
        rec.name() == w) {
      ++writes;
      bytes += rec.bytes();
    }
  });
  return {writes, bytes};
}

[[nodiscard]] auto all_queries(const analysis::UnifiedTraceStore& store) {
  return std::tuple{store.call_stats(), store.bytes_in_window(0, kSpan / 2),
                    store.io_rate_series(from_millis(5.0)),
                    store.hottest_files(10)};
}

}  // namespace

int main() {
  const std::vector<TraceEvent> events = synth_events();
  const EventBatch batch = EventBatch::from_events(events);

  trace::BinaryOptions plain;  // the mmap baseline: no CRC, no compression
  plain.checksum = false;
  trace::BinaryOptions compressed;
  compressed.checksum = false;
  compressed.compress = true;
  trace::BinaryOptions full;  // the cold-tier shape
  full.checksum = true;
  full.compress = true;

  const std::string v2_path = "bench_iotb3_v2.iotb";
  const std::string v3_lz_path = "bench_iotb3_lz.iotb3";
  const std::string v3_full_path = "bench_iotb3_full.iotb3";
  write_file(v2_path, trace::encode_binary_v2(batch, plain));
  write_file(v3_lz_path, trace::encode_binary_v3(batch, compressed));
  write_file(v3_full_path, trace::encode_binary_v3(batch, full));
  const std::vector<std::uint8_t> v3_plain =
      trace::encode_binary_v3(batch, plain);
  const std::vector<std::uint8_t> v3_crc = [&] {
    trace::BinaryOptions crc_only;
    crc_only.checksum = true;
    return trace::encode_binary_v3(batch, crc_only);
  }();

  // --- gate 1: compressed blocks vs uncompressed mmap ----------------------
  const analysis::UnifiedTraceStore v2_store = open_store(v2_path);
  const analysis::UnifiedTraceStore v3_store = open_store(v3_lz_path);
  const Bytes v2_probe_total = narrow_probes(v2_store);
  const bool probe_identical = narrow_probes(v3_store) == v2_probe_total;
  const double mmap_s = best_seconds([&] { (void)narrow_probes(v2_store); });
  const double lz_s = best_seconds([&] { (void)narrow_probes(v3_store); });
  const double compressed_ratio = mmap_s / lz_s;

  // --- gate 2: block-index skips vs full decode ----------------------------
  // Fresh stores per repetition: the decoded-block cache must not carry
  // between configurations or repetitions.
  double indexed_s = 1e100;
  double unindexed_s = 1e100;
  bool skip_identical = true;
  for (int r = 0; r < kRepetitions; ++r) {
    analysis::UnifiedTraceStore store = open_store(v3_full_path);
    auto t0 = std::chrono::steady_clock::now();
    const Bytes with_index = narrow_probes(store);
    auto t1 = std::chrono::steady_clock::now();
    indexed_s = std::min(indexed_s,
                         std::chrono::duration<double>(t1 - t0).count());

    analysis::UnifiedTraceStore flat = open_store(v3_full_path);
    flat.set_use_indexes(false);
    t0 = std::chrono::steady_clock::now();
    const Bytes without_index = narrow_probes(flat);
    t1 = std::chrono::steady_clock::now();
    unindexed_s = std::min(unindexed_s,
                           std::chrono::duration<double>(t1 - t0).count());
    skip_identical = skip_identical && with_index == without_index &&
                     with_index == v2_probe_total;
  }
  const double block_skip_speedup = unindexed_s / indexed_s;

  // --- gate 3: per-block CRC tax on a full first-touch scan ----------------
  // Fresh views per repetition: the CRC is paid once per block per view.
  const auto plain_scan = scan_blocks(BlockView(v3_plain));
  const auto crc_scan = scan_blocks(BlockView(v3_crc));
  const bool scan_identical = plain_scan == crc_scan;
  const double plain_s =
      best_seconds([&] { (void)scan_blocks(BlockView(v3_plain)); });
  const double crc_s =
      best_seconds([&] { (void)scan_blocks(BlockView(v3_crc)); });
  const double checksum_ratio = plain_s / crc_s;

  // --- gate 4: v3 query identity across source kinds -----------------------
  analysis::UnifiedTraceStore owned;
  owned.ingest(batch, {{"framework", "bench"}});
  owned.set_query_threads(1);
  const auto owned_results = all_queries(owned);
  const analysis::UnifiedTraceStore v3_full_store = open_store(v3_full_path);
  const bool identity_v2 = all_queries(v2_store) == owned_results;
  const bool identity_v3 = all_queries(v3_full_store) == owned_results;
  analysis::UnifiedTraceStore::ColdTierOptions cold;
  cold.directory = ".";
  cold.file_prefix = "bench_iotb3_era";
  cold.binary = full;
  (void)owned.compact(static_cast<std::size_t>(-1), cold);
  const bool identity_cold = all_queries(owned) == owned_results;
  std::remove("bench_iotb3_era-0.iotb3");
  std::remove(v2_path.c_str());
  std::remove(v3_lz_path.c_str());
  std::remove(v3_full_path.c_str());

  const bool identical = probe_identical && skip_identical &&
                         scan_identical && identity_v2 && identity_v3 &&
                         identity_cold;
  const bool pass = identical && compressed_ratio >= kCompressedRatioFloor &&
                    block_skip_speedup >= kBlockSkipFloor &&
                    checksum_ratio >= kChecksumRatioFloor;

  const std::string json = strprintf(
      "{\n"
      "  \"bench\": \"iotb3\",\n"
      "  \"events\": %zu,\n"
      "  \"blocks\": %zu,\n"
      "  \"compressed_query_ratio\": %.3f,\n"
      "  \"compressed_query_ratio_floor\": %.3f,\n"
      "  \"block_skip_speedup\": %.2f,\n"
      "  \"block_skip_speedup_floor\": %.1f,\n"
      "  \"checksummed_scan_ratio\": %.3f,\n"
      "  \"checksummed_scan_ratio_floor\": %.3f,\n"
      "  \"identity_v2\": %s,\n"
      "  \"identity_v3\": %s,\n"
      "  \"identity_cold_compact\": %s,\n"
      "  \"probe_results_identical\": %s\n"
      "}\n",
      kEvents, BlockView(v3_plain).block_count(), compressed_ratio,
      kCompressedRatioFloor, block_skip_speedup, kBlockSkipFloor,
      checksum_ratio, kChecksumRatioFloor, identity_v2 ? "true" : "false",
      identity_v3 ? "true" : "false", identity_cold ? "true" : "false",
      (probe_identical && skip_identical && scan_identical) ? "true"
                                                            : "false");

  std::printf("=== bench_iotb3 ===\n");
  std::printf("compressed  narrow probes %.3fx of uncompressed mmap "
              "(floor %.3fx) | mmap %.2f ms, lz %.2f ms\n",
              compressed_ratio, kCompressedRatioFloor, mmap_s * 1e3,
              lz_s * 1e3);
  std::printf("block-skip  indexed probes %.2fx unindexed (floor %.1fx) | "
              "unindexed %.2f ms, indexed %.2f ms\n",
              block_skip_speedup, kBlockSkipFloor, unindexed_s * 1e3,
              indexed_s * 1e3);
  std::printf("crc         checksummed scan %.3fx of unchecked "
              "(floor %.3fx) | plain %.2f ms, crc %.2f ms\n",
              checksum_ratio, kChecksumRatioFloor, plain_s * 1e3,
              crc_s * 1e3);
  std::printf("identity    v2=%s v3=%s cold-compact=%s\n",
              identity_v2 ? "yes" : "no", identity_v3 ? "yes" : "no",
              identity_cold ? "yes" : "no");
  std::printf("BENCH_JSON_BEGIN\n%sBENCH_JSON_END\n", json.c_str());

  if (std::FILE* f = std::fopen("BENCH_iotb3.json", "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
  }
  if (!pass) {
    std::fprintf(stderr,
                 "FAIL: iotb3 gates (compressed %.3f >= %.3f: %d, skip "
                 "%.2f >= %.1f: %d, crc %.3f >= %.3f: %d, identical=%d)\n",
                 compressed_ratio, kCompressedRatioFloor,
                 compressed_ratio >= kCompressedRatioFloor,
                 block_skip_speedup, kBlockSkipFloor,
                 block_skip_speedup >= kBlockSkipFloor, checksum_ratio,
                 kChecksumRatioFloor, checksum_ratio >= kChecksumRatioFloor,
                 identical);
    return 1;
  }
  return 0;
}
