// IOTB3 block containers: per-block compression/CRC, the footer mini-index
// skips, the SIMD scan kernels (PR 6 gates 1-4), and the finished cold
// tier — per-block encryption, columnar projection, block-parallel decode
// (PR 7 gates 5-8):
//
//   1. A dashboard-shaped mix of narrow windowed queries against a
//      compressed IOTB3 store must run within 2x of the same mix against an
//      uncompressed mmap'd IOTB2 store (ratio >= 0.5): compression may not
//      make interactive probes pathologically slow, because the block index
//      confines decompression to the blocks a window actually touches and
//      decoded blocks stay cached.
//   2. On the block-backed store, the narrow-probe mix must run >= 3x
//      faster with the per-block index skips than with
//      set_use_indexes(false). Stores are rebuilt fresh for every
//      repetition — the decoded-block cache would otherwise let the second
//      repetition of the unindexed run coast on blocks the first one paid
//      for, flattering the losing side.
//   3. A full first-touch scan of a checksummed, uncompressed IOTB3 view
//      must run within 1.5x of the unchecksummed one (ratio >= 0.667): the
//      slice-by-8 CRC pass is a small tax, not a second decode. Fresh
//      views per repetition, since CRCs are verified once per block.
//   4. Hard identity gates: all aggregate queries must be bit-identical
//      across an owned ingest, a v2 view store, a v3 block store
//      (compressed + checksummed), encrypted / projected / encrypted+
//      projected v3 stores, and plain + encrypted cold-compacted stores.
//   5. The narrow-probe mix against an encrypted cold store (lazy per-block
//      decrypt, ingest_view with a key) must run >= 3x faster than the
//      pre-v3-encryption fallback: a whole-body-encrypted v2 container of
//      the same compressed + checksummed shape, which can only be opened
//      by decrypting and decoding everything into an owned batch, ingesting
//      it, then probing. The v3 footer stays plaintext, so the keyed view
//      pays decryption only for the blocks a window touches.
//   6. The same mix against a projected store must run >= 2x faster than
//      against the whole-record store: narrow windowed queries read only
//      the hot column group (33 of 81 bytes per record), so projection
//      shrinks both the bytes decompressed and the stride scanned. Fresh
//      stores per repetition, as in gate 2.
//   7. A full-span bytes_in_window over a projected store must decode at
//      most half of the stored block bytes (saving >= 2x, measured from
//      pool_infos decoded_stored_bytes): the cold column group stays
//      compressed on disk.
//   8. A cold full scan (call_stats over an encrypted + projected store)
//      must speed up from 1 to 4 query threads via block-parallel decode.
//      The floor is hardware-aware: >= 2x when the machine has >= 4 cores,
//      otherwise a no-regression floor of 0.7 (striping overhead must stay
//      small even when the threads just time-slice one core).
//
// Emits BENCH_iotb3.json; floors live next to the measured values
// (*_floor keys) for tools/check_build.sh --bench.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "analysis/unified_store.h"
#include "bench_common.h"
#include "trace/binary_format.h"
#include "trace/block_view.h"
#include "trace/event_batch.h"
#include "trace/record_view.h"
#include "util/cipher.h"
#include "util/strings.h"

namespace {

using namespace iotaxo;
using trace::BlockView;
using trace::EventBatch;
using trace::RecordView;
using trace::TraceEvent;

constexpr std::size_t kEvents = 1'000'000;
constexpr int kRanks = 32;
constexpr int kRepetitions = 3;
constexpr int kWindowProbes = 16;

constexpr double kCompressedRatioFloor = 0.5;   // within 2x of mmap
constexpr double kBlockSkipFloor = 3.0;
constexpr double kChecksumRatioFloor = 0.667;   // within 1.5x of unchecked
constexpr double kEncryptedProbeFloor = 3.0;    // vs decode-everything
constexpr double kProjectedProbeFloor = 2.0;    // vs whole-record blocks
constexpr double kProjectedSavingFloor = 2.0;   // stored / decoded bytes

/// The capture-shaped stream the other benches use; event i sits at i
/// microseconds so time windows map cleanly onto blocks.
[[nodiscard]] std::vector<TraceEvent> synth_events() {
  static const char* kNames[] = {"SYS_write", "SYS_read",  "SYS_lseek",
                                 "SYS_open",  "SYS_close", "MPI_File_write_at",
                                 "write",     "read"};
  std::vector<TraceEvent> events;
  events.reserve(kEvents);
  for (std::size_t i = 0; i < kEvents; ++i) {
    TraceEvent ev = trace::make_syscall(
        kNames[i % (sizeof(kNames) / sizeof(kNames[0]))],
        {"5", "65536", strprintf("%zu", (i % 4096) * 65536)}, 65536);
    ev.rank = static_cast<int>(i % kRanks);
    ev.node = ev.rank;
    ev.pid = 10000 + static_cast<std::uint32_t>(ev.rank);
    ev.host = strprintf("host%02d.lanl.gov", ev.rank);
    ev.path = ev.rank % 2 == 0 ? "/pfs/shared/out.dat" : "/pfs/rank/out.dat";
    ev.fd = 5;
    ev.bytes = 65536;
    ev.offset = static_cast<Bytes>(i % 4096) * 65536;
    ev.local_start = static_cast<SimTime>(i) * kMicrosecond;
    ev.duration = 3 * kMicrosecond;
    events.push_back(std::move(ev));
  }
  return events;
}

template <class Fn>
[[nodiscard]] double best_seconds(Fn&& fn) {
  double best = 1e100;
  for (int r = 0; r < kRepetitions; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

void write_file(const std::string& path, const std::vector<std::uint8_t>& b) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr || std::fwrite(b.data(), 1, b.size(), f) != b.size()) {
    std::fprintf(stderr, "FAIL: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fclose(f);
}

constexpr SimTime kSpan = static_cast<SimTime>(kEvents) * kMicrosecond;

/// Narrow probes into scattered eras: each window covers ~1/64 of the
/// span, so an indexed block-backed store decompresses only the few
/// blocks each window overlaps.
template <class Store>
[[nodiscard]] Bytes narrow_probes(const Store& store) {
  Bytes total = 0;
  for (int w = 0; w < kWindowProbes; ++w) {
    const SimTime begin = (static_cast<SimTime>(w) * 7 % 61) * (kSpan / 64);
    total += store.bytes_in_window(begin, begin + kSpan / 64);
  }
  return total;
}

[[nodiscard]] analysis::UnifiedTraceStore open_store(const std::string& path) {
  analysis::UnifiedTraceStore store;
  store.ingest_view(path, {{"framework", "bench"}});
  store.set_query_threads(1);
  return store;
}

/// The full-touch scan both checksum variants run: fold every record's
/// duration and write-call bytes through the block decode path.
[[nodiscard]] std::pair<long long, Bytes> scan_blocks(const BlockView& view) {
  long long writes = 0;
  Bytes bytes = 0;
  const trace::StrId w = view.find_string("SYS_write").value_or(0);
  view.for_each([&](std::size_t, const RecordView& rec, std::uint32_t) {
    if (rec.cls() == trace::EventClass::kSyscall && w != 0 &&
        rec.name() == w) {
      ++writes;
      bytes += rec.bytes();
    }
  });
  return {writes, bytes};
}

[[nodiscard]] auto all_queries(const analysis::UnifiedTraceStore& store) {
  return std::tuple{store.call_stats(), store.bytes_in_window(0, kSpan / 2),
                    store.io_rate_series(from_millis(5.0)),
                    store.hottest_files(10)};
}

}  // namespace

int main() {
  const std::vector<TraceEvent> events = synth_events();
  const EventBatch batch = EventBatch::from_events(events);

  trace::BinaryOptions plain;  // the mmap baseline: no CRC, no compression
  plain.checksum = false;
  trace::BinaryOptions compressed;
  compressed.checksum = false;
  compressed.compress = true;
  trace::BinaryOptions full;  // the cold-tier shape
  full.checksum = true;
  full.compress = true;
  const CipherKey key = derive_key("bench-iotb3-key");
  trace::BinaryOptions encrypted = full;
  encrypted.encrypt = true;
  encrypted.key = key;
  trace::BinaryOptions projected = full;
  projected.project = true;
  trace::BinaryOptions sealed = encrypted;  // the finished cold tier
  sealed.project = true;

  const std::string v2_path = "bench_iotb3_v2.iotb";
  const std::string v3_lz_path = "bench_iotb3_lz.iotb3";
  const std::string v3_full_path = "bench_iotb3_full.iotb3";
  const std::string v3_enc_path = "bench_iotb3_enc.iotb3";
  const std::string v3_proj_path = "bench_iotb3_proj.iotb3";
  const std::string v3_sealed_path = "bench_iotb3_sealed.iotb3";
  // The pre-v3-encryption artifact gate 5 falls back to: same compression
  // and CRC, but the whole payload encrypted as one body, so there is no
  // lazy path — opening it means decrypting and decoding everything.
  trace::BinaryOptions v2_encrypted = full;
  v2_encrypted.encrypt = true;
  v2_encrypted.key = key;
  const std::vector<std::uint8_t> v2_enc_bytes =
      trace::encode_binary_v2(batch, v2_encrypted);
  write_file(v2_path, trace::encode_binary_v2(batch, plain));
  write_file(v3_lz_path, trace::encode_binary_v3(batch, compressed));
  write_file(v3_full_path, trace::encode_binary_v3(batch, full));
  write_file(v3_enc_path, trace::encode_binary_v3(batch, encrypted));
  write_file(v3_proj_path, trace::encode_binary_v3(batch, projected));
  write_file(v3_sealed_path, trace::encode_binary_v3(batch, sealed));
  const std::vector<std::uint8_t> v3_plain =
      trace::encode_binary_v3(batch, plain);
  const std::vector<std::uint8_t> v3_crc = [&] {
    trace::BinaryOptions crc_only;
    crc_only.checksum = true;
    return trace::encode_binary_v3(batch, crc_only);
  }();

  // --- gate 1: compressed blocks vs uncompressed mmap ----------------------
  const analysis::UnifiedTraceStore v2_store = open_store(v2_path);
  const analysis::UnifiedTraceStore v3_store = open_store(v3_lz_path);
  const Bytes v2_probe_total = narrow_probes(v2_store);
  const bool probe_identical = narrow_probes(v3_store) == v2_probe_total;
  const double mmap_s = best_seconds([&] { (void)narrow_probes(v2_store); });
  const double lz_s = best_seconds([&] { (void)narrow_probes(v3_store); });
  const double compressed_ratio = mmap_s / lz_s;

  // --- gate 2: block-index skips vs full decode ----------------------------
  // Fresh stores per repetition: the decoded-block cache must not carry
  // between configurations or repetitions.
  double indexed_s = 1e100;
  double unindexed_s = 1e100;
  bool skip_identical = true;
  for (int r = 0; r < kRepetitions; ++r) {
    analysis::UnifiedTraceStore store = open_store(v3_full_path);
    auto t0 = std::chrono::steady_clock::now();
    const Bytes with_index = narrow_probes(store);
    auto t1 = std::chrono::steady_clock::now();
    indexed_s = std::min(indexed_s,
                         std::chrono::duration<double>(t1 - t0).count());

    analysis::UnifiedTraceStore flat = open_store(v3_full_path);
    flat.set_use_indexes(false);
    t0 = std::chrono::steady_clock::now();
    const Bytes without_index = narrow_probes(flat);
    t1 = std::chrono::steady_clock::now();
    unindexed_s = std::min(unindexed_s,
                           std::chrono::duration<double>(t1 - t0).count());
    skip_identical = skip_identical && with_index == without_index &&
                     with_index == v2_probe_total;
  }
  const double block_skip_speedup = unindexed_s / indexed_s;

  // --- gate 3: per-block CRC tax on a full first-touch scan ----------------
  // Fresh views per repetition: the CRC is paid once per block per view.
  const auto plain_scan = scan_blocks(BlockView(v3_plain));
  const auto crc_scan = scan_blocks(BlockView(v3_crc));
  const bool scan_identical = plain_scan == crc_scan;
  const double plain_s =
      best_seconds([&] { (void)scan_blocks(BlockView(v3_plain)); });
  const double crc_s =
      best_seconds([&] { (void)scan_blocks(BlockView(v3_crc)); });
  const double checksum_ratio = plain_s / crc_s;

  // --- gate 5: encrypted lazy probes vs the decode-everything fallback -----
  // Before per-block encryption, an encrypted capture was a whole-body
  // encrypted v2 container that could only be opened by decrypting and
  // decoding everything into an owned batch. Both sides are timed end to
  // end (open + probes), fresh per repetition.
  double enc_probe_s = 1e100;
  double fallback_s = 1e100;
  bool enc_identical = true;
  for (int r = 0; r < kRepetitions; ++r) {
    auto t0 = std::chrono::steady_clock::now();
    analysis::UnifiedTraceStore enc_store;
    enc_store.ingest_view(v3_enc_path, {{"framework", "bench"}}, key);
    enc_store.set_query_threads(1);
    const Bytes enc_total = narrow_probes(enc_store);
    auto t1 = std::chrono::steady_clock::now();
    enc_probe_s = std::min(enc_probe_s,
                           std::chrono::duration<double>(t1 - t0).count());

    t0 = std::chrono::steady_clock::now();
    analysis::UnifiedTraceStore fallback;
    fallback.ingest(trace::decode_binary_batch(v2_enc_bytes, key),
                    {{"framework", "bench"}});
    fallback.set_query_threads(1);
    const Bytes fallback_total = narrow_probes(fallback);
    t1 = std::chrono::steady_clock::now();
    fallback_s = std::min(fallback_s,
                          std::chrono::duration<double>(t1 - t0).count());
    enc_identical = enc_identical && enc_total == v2_probe_total &&
                    fallback_total == v2_probe_total;
  }
  const double encrypted_probe_speedup = fallback_s / enc_probe_s;

  // --- gate 6: projected probes vs whole-record blocks ---------------------
  // Same probe mix, fresh stores per repetition; compared against the
  // gate-2 indexed time on the whole-record container (identical protocol).
  double proj_probe_s = 1e100;
  bool proj_identical = true;
  for (int r = 0; r < kRepetitions; ++r) {
    analysis::UnifiedTraceStore store = open_store(v3_proj_path);
    const auto t0 = std::chrono::steady_clock::now();
    const Bytes proj_total = narrow_probes(store);
    const auto t1 = std::chrono::steady_clock::now();
    proj_probe_s = std::min(proj_probe_s,
                            std::chrono::duration<double>(t1 - t0).count());
    proj_identical = proj_identical && proj_total == v2_probe_total;
  }
  const double projected_probe_speedup = indexed_s / proj_probe_s;

  // --- gate 7: projected decode saving on a full-span scan -----------------
  // bytes_in_window over the whole span touches every block but needs only
  // the hot column group; the cold groups must stay undecoded.
  double projected_decode_saving = 0.0;
  {
    analysis::UnifiedTraceStore store = open_store(v3_proj_path);
    (void)store.bytes_in_window(0, kSpan);
    for (const analysis::StorePoolInfo& info : store.pool_infos()) {
      if (info.decoded_stored_bytes > 0) {
        projected_decode_saving = static_cast<double>(info.stored_bytes) /
                                  static_cast<double>(info.decoded_stored_bytes);
      }
    }
  }

  // --- gate 8: block-parallel cold full scan, 1 vs 4 query threads ---------
  // call_stats over the sealed (encrypted + projected) store decodes every
  // block; decode_blocks stripes them across the query-thread budget. The
  // floor is hardware-aware: a single-core machine can only time-slice, so
  // there the gate just bounds the striping overhead.
  const unsigned hw_threads = std::thread::hardware_concurrency();
  const double parallel_floor = hw_threads >= 4 ? 2.0 : 0.7;
  double scan1_s = 1e100;
  double scan4_s = 1e100;
  bool parallel_identical = true;
  std::map<std::string, analysis::CallStats> scan_reference;
  for (int r = 0; r < kRepetitions; ++r) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      analysis::UnifiedTraceStore store;
      store.ingest_view(v3_sealed_path, {{"framework", "bench"}}, key);
      store.set_query_threads(threads);
      const auto t0 = std::chrono::steady_clock::now();
      auto stats = store.call_stats();
      const auto t1 = std::chrono::steady_clock::now();
      const double s = std::chrono::duration<double>(t1 - t0).count();
      (threads == 1 ? scan1_s : scan4_s) =
          std::min(threads == 1 ? scan1_s : scan4_s, s);
      if (scan_reference.empty()) {
        scan_reference = std::move(stats);
      } else {
        parallel_identical = parallel_identical && stats == scan_reference;
      }
    }
  }
  const double parallel_scan_speedup = scan1_s / scan4_s;

  // --- gate 4: v3 query identity across source kinds -----------------------
  analysis::UnifiedTraceStore owned;
  owned.ingest(batch, {{"framework", "bench"}});
  owned.set_query_threads(1);
  const auto owned_results = all_queries(owned);
  const analysis::UnifiedTraceStore v3_full_store = open_store(v3_full_path);
  const bool identity_v2 = all_queries(v2_store) == owned_results;
  const bool identity_v3 = all_queries(v3_full_store) == owned_results;
  analysis::UnifiedTraceStore enc_id_store;
  enc_id_store.ingest_view(v3_enc_path, {{"framework", "bench"}}, key);
  enc_id_store.set_query_threads(1);
  const bool identity_encrypted = all_queries(enc_id_store) == owned_results;
  const analysis::UnifiedTraceStore proj_id_store = open_store(v3_proj_path);
  const bool identity_projected = all_queries(proj_id_store) == owned_results;
  analysis::UnifiedTraceStore sealed_id_store;
  sealed_id_store.ingest_view(v3_sealed_path, {{"framework", "bench"}}, key);
  sealed_id_store.set_query_threads(1);
  const bool identity_sealed = all_queries(sealed_id_store) == owned_results;
  // Cold spills get their own scratch directories: compaction commits each
  // era through the directory's MANIFEST.iotm, so sharing the cwd would
  // leave sticky era numbering behind between bench runs.
  const std::string cold_dir = "bench_iotb3_cold.scratch";
  std::filesystem::remove_all(cold_dir);
  std::filesystem::create_directories(cold_dir);
  analysis::UnifiedTraceStore::ColdTierOptions cold;
  cold.directory = cold_dir;
  cold.file_prefix = "era";
  cold.binary = full;
  (void)owned.compact(static_cast<std::size_t>(-1), cold);
  const bool identity_cold = all_queries(owned) == owned_results;
  // Cold-compact straight into the finished cold-tier shape: encrypted +
  // projected eras, reopened for swap-in with the same key.
  analysis::UnifiedTraceStore owned_sealed;
  owned_sealed.ingest(batch, {{"framework", "bench"}});
  owned_sealed.set_query_threads(1);
  const std::string cold_sealed_dir = "bench_iotb3_coldsealed.scratch";
  std::filesystem::remove_all(cold_sealed_dir);
  std::filesystem::create_directories(cold_sealed_dir);
  analysis::UnifiedTraceStore::ColdTierOptions cold_sealed;
  cold_sealed.directory = cold_sealed_dir;
  cold_sealed.file_prefix = "era";
  cold_sealed.binary = sealed;
  (void)owned_sealed.compact(static_cast<std::size_t>(-1), cold_sealed);
  const bool identity_cold_sealed = all_queries(owned_sealed) == owned_results;
  // --- armed replay for the embedded metrics object ------------------------
  // All gated timings above ran disarmed; a fresh sealed store driven armed
  // (first-touch block decode, then narrow probes and a full scan) feeds
  // the artifact's "metrics" object.
  const obs::MetricsSnapshot metrics_before = bench::metrics_baseline();
  {
    analysis::UnifiedTraceStore armed_store;
    armed_store.ingest_view(v3_sealed_path, {{"framework", "bench"}}, key);
    armed_store.set_query_threads(1);
    (void)narrow_probes(armed_store);
    (void)armed_store.call_stats();
  }
  const std::string metrics_json = bench::metrics_delta_json(metrics_before);

  std::filesystem::remove_all(cold_dir);
  std::filesystem::remove_all(cold_sealed_dir);
  std::remove(v2_path.c_str());
  std::remove(v3_lz_path.c_str());
  std::remove(v3_full_path.c_str());
  std::remove(v3_enc_path.c_str());
  std::remove(v3_proj_path.c_str());
  std::remove(v3_sealed_path.c_str());

  const bool identical = probe_identical && skip_identical &&
                         scan_identical && enc_identical && proj_identical &&
                         parallel_identical && identity_v2 && identity_v3 &&
                         identity_encrypted && identity_projected &&
                         identity_sealed && identity_cold &&
                         identity_cold_sealed;
  const bool pass = identical && compressed_ratio >= kCompressedRatioFloor &&
                    block_skip_speedup >= kBlockSkipFloor &&
                    checksum_ratio >= kChecksumRatioFloor &&
                    encrypted_probe_speedup >= kEncryptedProbeFloor &&
                    projected_probe_speedup >= kProjectedProbeFloor &&
                    projected_decode_saving >= kProjectedSavingFloor &&
                    parallel_scan_speedup >= parallel_floor;

  const std::string json = strprintf(
      "{\n"
      "  \"bench\": \"iotb3\",\n"
      "  \"events\": %zu,\n"
      "  \"blocks\": %zu,\n"
      "  \"compressed_query_ratio\": %.3f,\n"
      "  \"compressed_query_ratio_floor\": %.3f,\n"
      "  \"block_skip_speedup\": %.2f,\n"
      "  \"block_skip_speedup_floor\": %.1f,\n"
      "  \"checksummed_scan_ratio\": %.3f,\n"
      "  \"checksummed_scan_ratio_floor\": %.3f,\n"
      "  \"encrypted_probe_speedup\": %.2f,\n"
      "  \"encrypted_probe_speedup_floor\": %.1f,\n"
      "  \"projected_probe_speedup\": %.2f,\n"
      "  \"projected_probe_speedup_floor\": %.1f,\n"
      "  \"projected_decode_saving\": %.2f,\n"
      "  \"projected_decode_saving_floor\": %.1f,\n"
      "  \"parallel_scan_speedup\": %.2f,\n"
      "  \"parallel_scan_speedup_floor\": %.2f,\n"
      "  \"hardware_threads\": %u,\n"
      "  \"identity_v2\": %s,\n"
      "  \"identity_v3\": %s,\n"
      "  \"identity_encrypted\": %s,\n"
      "  \"identity_projected\": %s,\n"
      "  \"identity_encrypted_projected\": %s,\n"
      "  \"identity_cold_compact\": %s,\n"
      "  \"identity_cold_compact_sealed\": %s,\n"
      "  \"probe_results_identical\": %s,\n"
      "  \"metrics\": %s\n"
      "}\n",
      kEvents, BlockView(v3_plain).block_count(), compressed_ratio,
      kCompressedRatioFloor, block_skip_speedup, kBlockSkipFloor,
      checksum_ratio, kChecksumRatioFloor, encrypted_probe_speedup,
      kEncryptedProbeFloor, projected_probe_speedup, kProjectedProbeFloor,
      projected_decode_saving, kProjectedSavingFloor, parallel_scan_speedup,
      parallel_floor, hw_threads, identity_v2 ? "true" : "false",
      identity_v3 ? "true" : "false", identity_encrypted ? "true" : "false",
      identity_projected ? "true" : "false",
      identity_sealed ? "true" : "false", identity_cold ? "true" : "false",
      identity_cold_sealed ? "true" : "false",
      (probe_identical && skip_identical && scan_identical &&
       enc_identical && proj_identical && parallel_identical)
          ? "true"
          : "false",
      metrics_json.c_str());

  std::printf("=== bench_iotb3 ===\n");
  std::printf("compressed  narrow probes %.3fx of uncompressed mmap "
              "(floor %.3fx) | mmap %.2f ms, lz %.2f ms\n",
              compressed_ratio, kCompressedRatioFloor, mmap_s * 1e3,
              lz_s * 1e3);
  std::printf("block-skip  indexed probes %.2fx unindexed (floor %.1fx) | "
              "unindexed %.2f ms, indexed %.2f ms\n",
              block_skip_speedup, kBlockSkipFloor, unindexed_s * 1e3,
              indexed_s * 1e3);
  std::printf("crc         checksummed scan %.3fx of unchecked "
              "(floor %.3fx) | plain %.2f ms, crc %.2f ms\n",
              checksum_ratio, kChecksumRatioFloor, plain_s * 1e3,
              crc_s * 1e3);
  std::printf("encrypted   lazy keyed probes %.2fx decode-everything "
              "fallback (floor %.1fx) | fallback %.2f ms, lazy %.2f ms\n",
              encrypted_probe_speedup, kEncryptedProbeFloor, fallback_s * 1e3,
              enc_probe_s * 1e3);
  std::printf("projected   hot-column probes %.2fx whole-record blocks "
              "(floor %.1fx) | full %.2f ms, hot %.2f ms\n",
              projected_probe_speedup, kProjectedProbeFloor, indexed_s * 1e3,
              proj_probe_s * 1e3);
  std::printf("projected   full-span scan decoded 1/%.2f of stored bytes "
              "(floor 1/%.1f)\n",
              projected_decode_saving, kProjectedSavingFloor);
  std::printf("parallel    sealed cold scan %.2fx from 1 to 4 query "
              "threads (floor %.2fx) | 1t %.2f ms, 4t %.2f ms\n",
              parallel_scan_speedup, parallel_floor, scan1_s * 1e3,
              scan4_s * 1e3);
  if (hw_threads < 4) {
    std::printf("parallel    note: hardware_concurrency=%u < 4, floor "
                "capped to no-regression (threads time-slice one core)\n",
                hw_threads);
  }
  std::printf("identity    v2=%s v3=%s enc=%s proj=%s enc+proj=%s "
              "cold-compact=%s cold-compact-sealed=%s\n",
              identity_v2 ? "yes" : "no", identity_v3 ? "yes" : "no",
              identity_encrypted ? "yes" : "no",
              identity_projected ? "yes" : "no",
              identity_sealed ? "yes" : "no", identity_cold ? "yes" : "no",
              identity_cold_sealed ? "yes" : "no");
  std::printf("BENCH_JSON_BEGIN\n%sBENCH_JSON_END\n", json.c_str());

  if (std::FILE* f = std::fopen("BENCH_iotb3.json", "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
  }
  if (!pass) {
    std::fprintf(stderr,
                 "FAIL: iotb3 gates (compressed %.3f >= %.3f: %d, skip "
                 "%.2f >= %.1f: %d, crc %.3f >= %.3f: %d, enc %.2f >= "
                 "%.1f: %d, proj %.2f >= %.1f: %d, saving %.2f >= %.1f: "
                 "%d, parallel %.2f >= %.2f: %d, identical=%d)\n",
                 compressed_ratio, kCompressedRatioFloor,
                 compressed_ratio >= kCompressedRatioFloor,
                 block_skip_speedup, kBlockSkipFloor,
                 block_skip_speedup >= kBlockSkipFloor, checksum_ratio,
                 kChecksumRatioFloor, checksum_ratio >= kChecksumRatioFloor,
                 encrypted_probe_speedup, kEncryptedProbeFloor,
                 encrypted_probe_speedup >= kEncryptedProbeFloor,
                 projected_probe_speedup, kProjectedProbeFloor,
                 projected_probe_speedup >= kProjectedProbeFloor,
                 projected_decode_saving, kProjectedSavingFloor,
                 projected_decode_saving >= kProjectedSavingFloor,
                 parallel_scan_speedup, parallel_floor,
                 parallel_scan_speedup >= parallel_floor, identical);
    return 1;
  }
  return 0;
}
