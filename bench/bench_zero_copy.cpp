// Zero-copy IOTB2 views, indexed store queries, and era compaction — the
// PR 3 gates:
//
//   1. Opening a 200k-event IOTB2 file through MappedTraceFile + BatchView
//      and scanning it in place must be >= 5x faster than reading the file,
//      decoding it into an EventBatch and running the same scan. The gated
//      file is unchecksummed so the metric isolates the read-path
//      difference (the CRC pass costs both sides the same and would only
//      dilute it); the checksummed variant is reported alongside.
//   2. On a 32-source store, the windowed queries (a dashboard-shaped mix
//      of 16 narrow bytes_in_window probes plus one io_rate_series) must
//      run >= 3x faster with the pool indexes than with
//      set_use_indexes(false), with identical results. Measured serial so
//      the number is the index win, not thread-pool noise.
//   3. compact() must shrink the pool count while keeping all four
//      aggregate queries byte-identical to the uncompacted store, serial
//      and parallel alike.
//
// Emits BENCH_zero_copy.json. Gate floors live in the JSON next to the
// measured values (*_floor keys) so tools/check_build.sh --bench reads
// thresholds from the artifact instead of hard-coding them twice.
#include <chrono>
#include <cstdio>
#include <string>
#include <tuple>
#include <vector>

#include "analysis/unified_store.h"
#include "bench_common.h"
#include "trace/binary_format.h"
#include "trace/event_batch.h"
#include "trace/record_view.h"
#include "util/error.h"
#include "util/strings.h"

namespace {

using namespace iotaxo;
using trace::BatchView;
using trace::EventBatch;
using trace::EventRecord;
using trace::MappedTraceFile;
using trace::RecordView;
using trace::TraceEvent;

constexpr std::size_t kEvents = 200'000;
constexpr int kRanks = 32;
constexpr int kRepetitions = 5;
constexpr std::size_t kStoreSources = 32;
constexpr int kWindowProbes = 16;

constexpr double kViewScanFloor = 5.0;
constexpr double kIndexedQueryFloor = 3.0;

/// The same capture-shaped stream the other pipeline benches use: a
/// handful of call names, per-rank hosts, shared paths, distinct offset
/// args. Event i sits at i microseconds, so the 32 store sources (chunks
/// of kEvents/32) occupy disjoint time eras — the shape a long-lived
/// aggregation service accumulates.
[[nodiscard]] std::vector<TraceEvent> synth_events() {
  static const char* kNames[] = {"SYS_write", "SYS_read",  "SYS_lseek",
                                 "SYS_open",  "SYS_close", "MPI_File_write_at",
                                 "write",     "read"};
  std::vector<TraceEvent> events;
  events.reserve(kEvents);
  for (std::size_t i = 0; i < kEvents; ++i) {
    TraceEvent ev = trace::make_syscall(
        kNames[i % (sizeof(kNames) / sizeof(kNames[0]))],
        {"5", "65536", strprintf("%zu", (i % 4096) * 65536)}, 65536);
    ev.rank = static_cast<int>(i % kRanks);
    ev.node = ev.rank;
    ev.pid = 10000 + static_cast<std::uint32_t>(ev.rank);
    ev.host = strprintf("host%02d.lanl.gov", ev.rank);
    ev.path = ev.rank % 2 == 0 ? "/pfs/shared/out.dat" : "/pfs/rank/out.dat";
    ev.fd = 5;
    ev.bytes = 65536;
    ev.offset = static_cast<Bytes>(i % 4096) * 65536;
    ev.local_start = static_cast<SimTime>(i) * kMicrosecond;
    ev.duration = 3 * kMicrosecond;
    events.push_back(std::move(ev));
  }
  return events;
}

/// Best-of-k wall time of `fn`, in seconds.
template <class Fn>
[[nodiscard]] double best_seconds(Fn&& fn) {
  double best = 1e100;
  for (int r = 0; r < kRepetitions; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

void write_file(const std::string& path, const std::vector<std::uint8_t>& b) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr || std::fwrite(b.data(), 1, b.size(), f) != b.size()) {
    std::fprintf(stderr, "FAIL: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fclose(f);
}

[[nodiscard]] std::vector<std::uint8_t> read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "FAIL: cannot read %s\n", path.c_str());
    std::exit(1);
  }
  std::fseek(f, 0, SEEK_END);
  const long len = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(len));
  if (std::fread(bytes.data(), 1, bytes.size(), f) != bytes.size()) {
    std::fprintf(stderr, "FAIL: short read on %s\n", path.c_str());
    std::exit(1);
  }
  std::fclose(f);
  return bytes;
}

/// The aggregate both read paths compute, so the comparison is scan vs
/// scan of identical work (and a correctness cross-check for free).
struct ScanResult {
  long long writes = 0;
  Bytes write_bytes = 0;
  SimTime total_duration = 0;
  bool operator==(const ScanResult&) const = default;
};

[[nodiscard]] ScanResult scan_batch(const EventBatch& batch) {
  ScanResult out;
  const trace::StrId w = batch.pool().find("SYS_write").value_or(0);
  for (const EventRecord& rec : batch.records()) {
    out.total_duration += rec.duration;
    if (rec.cls == trace::EventClass::kSyscall && w != 0 && rec.name == w) {
      ++out.writes;
      out.write_bytes += rec.bytes;
    }
  }
  return out;
}

[[nodiscard]] ScanResult scan_view(const BatchView& view) {
  ScanResult out;
  const trace::StrId w = view.find_string("SYS_write").value_or(0);
  const std::size_t n = view.size();
  for (std::size_t i = 0; i < n; ++i) {
    const RecordView rec = view.record(i);
    out.total_duration += rec.duration();
    if (rec.cls() == trace::EventClass::kSyscall && w != 0 &&
        rec.name() == w) {
      ++out.writes;
      out.write_bytes += rec.bytes();
    }
  }
  return out;
}

/// decode-then-scan vs view open+scan over one on-disk container; returns
/// the speedup and verifies both sides agree.
[[nodiscard]] double view_vs_decode(const std::string& path, bool* identical) {
  ScanResult decoded_result;
  const double decode_s = best_seconds([&] {
    const std::vector<std::uint8_t> bytes = read_file(path);
    const EventBatch batch = trace::decode_binary_batch(bytes);
    decoded_result = scan_batch(batch);
  });
  ScanResult view_result;
  const double view_s = best_seconds([&] {
    const MappedTraceFile file(path);
    const BatchView view(file.bytes());
    view_result = scan_view(view);
  });
  *identical = *identical && decoded_result == view_result;
  return decode_s / view_s;
}

}  // namespace

int main() {
  const std::vector<TraceEvent> events = synth_events();
  const EventBatch batch = EventBatch::from_events(events);

  // --- gate 1: zero-copy view vs decode ------------------------------------
  trace::BinaryOptions plain;
  plain.checksum = false;
  const std::string plain_path = "bench_zero_copy_plain.iotb";
  write_file(plain_path, trace::encode_binary_v2(batch, plain));
  trace::BinaryOptions checksummed;  // defaults: checksum on
  const std::string crc_path = "bench_zero_copy_crc.iotb";
  write_file(crc_path, trace::encode_binary_v2(batch, checksummed));

  bool scans_identical = true;
  const double view_speedup = view_vs_decode(plain_path, &scans_identical);
  const double view_speedup_crc = view_vs_decode(crc_path, &scans_identical);
  std::remove(plain_path.c_str());
  std::remove(crc_path.c_str());

  // --- gate 2: indexed vs unindexed windowed queries -----------------------
  analysis::UnifiedTraceStore store;
  {
    const std::size_t chunk = kEvents / kStoreSources;
    for (std::size_t s = 0; s < kStoreSources; ++s) {
      EventBatch source;
      const std::size_t begin = s * chunk;
      const std::size_t end = s + 1 == kStoreSources ? kEvents : begin + chunk;
      for (std::size_t i = begin; i < end; ++i) {
        source.append(events[i]);
      }
      store.ingest(source, {{"framework", "bench"},
                            {"application", strprintf("era%zu", s)}});
    }
  }
  const SimTime span = static_cast<SimTime>(kEvents) * kMicrosecond;
  const SimTime era = span / static_cast<SimTime>(kStoreSources);
  const SimTime bucket = from_millis(5.0);
  // A dashboard-shaped mix: narrow probes into scattered eras plus one
  // rate series over the full span.
  const auto windowed_queries = [&] {
    Bytes window_total = 0;
    for (int w = 0; w < kWindowProbes; ++w) {
      const SimTime begin =
          (static_cast<SimTime>(w) * 7 % kStoreSources) * era + era / 4;
      window_total += store.bytes_in_window(begin, begin + era / 2);
    }
    return std::pair{window_total, store.io_rate_series(bucket)};
  };
  store.set_query_threads(1);  // isolate the index win from thread effects
  store.set_use_indexes(false);
  const auto unindexed_results = windowed_queries();
  const double unindexed_s = best_seconds([&] { (void)windowed_queries(); });
  store.set_use_indexes(true);
  const auto indexed_results = windowed_queries();
  const double indexed_s = best_seconds([&] { (void)windowed_queries(); });
  const double indexed_speedup = unindexed_s / indexed_s;
  const bool indexed_identical = indexed_results == unindexed_results;

  // --- gate 3: era compaction keeps results bit-identical ------------------
  const auto all_queries = [&] {
    return std::tuple{store.call_stats(), store.bytes_in_window(0, span / 2),
                      store.io_rate_series(bucket), store.hottest_files(10)};
  };
  store.set_query_threads(1);
  const auto before_serial = all_queries();
  store.set_query_threads(4);
  const auto before_parallel = all_queries();
  const std::size_t pools_before = store.pool_count();
  const std::size_t pools_after = store.compact(8 * kMiB);
  store.set_query_threads(1);
  const bool compact_serial_identical = all_queries() == before_serial;
  store.set_query_threads(4);
  const bool compact_parallel_identical = all_queries() == before_parallel;
  const bool parallel_identical = before_parallel == before_serial;
  const bool compacted = pools_after < pools_before;

  const bool pass = scans_identical && indexed_identical &&
                    parallel_identical && compact_serial_identical &&
                    compact_parallel_identical && compacted &&
                    view_speedup >= kViewScanFloor &&
                    indexed_speedup >= kIndexedQueryFloor;

  // --- armed replay for the embedded metrics object ------------------------
  // All gated timings above ran disarmed; one armed pass over the windowed
  // mix plus the aggregate queries feeds the artifact's "metrics" object.
  const obs::MetricsSnapshot metrics_before = bench::metrics_baseline();
  (void)windowed_queries();
  (void)all_queries();
  const std::string metrics_json = bench::metrics_delta_json(metrics_before);

  const std::string json = strprintf(
      "{\n"
      "  \"bench\": \"zero_copy\",\n"
      "  \"events\": %zu,\n"
      "  \"store_sources\": %zu,\n"
      "  \"view_scan_speedup\": %.2f,\n"
      "  \"view_scan_speedup_floor\": %.1f,\n"
      "  \"view_scan_speedup_checksummed\": %.2f,\n"
      "  \"scans_identical\": %s,\n"
      "  \"indexed_query_speedup\": %.2f,\n"
      "  \"indexed_query_speedup_floor\": %.1f,\n"
      "  \"indexed_identical\": %s,\n"
      "  \"pools_before\": %zu,\n"
      "  \"pools_after\": %zu,\n"
      "  \"compaction_identical\": %s,\n"
      "  \"parallel_identical\": %s,\n"
      "  \"metrics\": %s\n"
      "}\n",
      kEvents, kStoreSources, view_speedup, kViewScanFloor, view_speedup_crc,
      scans_identical ? "true" : "false", indexed_speedup, kIndexedQueryFloor,
      indexed_identical ? "true" : "false", pools_before, pools_after,
      (compact_serial_identical && compact_parallel_identical && compacted)
          ? "true"
          : "false",
      parallel_identical ? "true" : "false", metrics_json.c_str());

  std::printf("=== bench_zero_copy ===\n");
  std::printf("view      open+scan %.2fx decode-then-scan (floor %.1fx; "
              "checksummed file: %.2fx)\n",
              view_speedup, kViewScanFloor, view_speedup_crc);
  std::printf("indexes   windowed queries %.2fx unindexed (floor %.1fx) | "
              "unindexed %.2f ms, indexed %.2f ms\n",
              indexed_speedup, kIndexedQueryFloor, unindexed_s * 1e3,
              indexed_s * 1e3);
  std::printf("compact   %zu pools -> %zu | identical serial=%s parallel=%s\n",
              pools_before, pools_after,
              compact_serial_identical ? "yes" : "no",
              compact_parallel_identical ? "yes" : "no");
  std::printf("BENCH_JSON_BEGIN\n%sBENCH_JSON_END\n", json.c_str());

  if (std::FILE* f = std::fopen("BENCH_zero_copy.json", "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
  }
  if (!pass) {
    std::fprintf(stderr,
                 "FAIL: zero-copy gates (view %.2fx >= %.1fx: %d, indexed "
                 "%.2fx >= %.1fx: %d, identical scan=%d idx=%d par=%d "
                 "compact=%d/%d, compacted=%d)\n",
                 view_speedup, kViewScanFloor, view_speedup >= kViewScanFloor,
                 indexed_speedup, kIndexedQueryFloor,
                 indexed_speedup >= kIndexedQueryFloor, scans_identical,
                 indexed_identical, parallel_identical,
                 compact_serial_identical, compact_parallel_identical,
                 compacted);
    return 1;
  }
  return 0;
}
