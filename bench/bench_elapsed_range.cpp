// §4.1.1's elapsed-time overhead claim: "The measured elapsed time was
// observed to be highly variable ranging from 24% to 222%. The variability
// was observed to relate directly to the block size of the I/O performed
// by the application." This bench prints the full elapsed-time overhead
// table (pattern x block size) and reports the measured range.
#include "bench_common.h"

using namespace iotaxo;

int main() {
  bench::print_header("Elapsed-time overhead range",
                      "Konwinski et al., SC'07, §4.1.1 (24% - 222%)");

  const sim::Cluster cluster = bench::paper_cluster();
  taxonomy::OverheadHarness harness(cluster, bench::pfs_factory());
  frameworks::LanlTrace lanl;

  const std::vector<Bytes> blocks = {64 * kKiB, 256 * kKiB, 1 * kMiB,
                                     4 * kMiB, 8 * kMiB};
  TextTable table({"Pattern", "64 KiB", "256 KiB", "1 MiB", "4 MiB",
                   "8 MiB"});
  for (std::size_t c = 1; c < 6; ++c) {
    table.set_align(c, Align::kRight);
  }

  double lo = 1e9;
  double hi = 0.0;
  for (const workload::Pattern pattern :
       {workload::Pattern::kNto1Strided, workload::Pattern::kNto1NonStrided,
        workload::Pattern::kNtoN}) {
    workload::MpiIoTestParams base;
    base.pattern = pattern;
    base.nranks = 32;
    base.total_bytes = bench::kScaledTotalN1;
    const auto points = harness.sweep_block_sizes(lanl, base, blocks);
    std::vector<std::string> row{to_string(pattern)};
    for (const taxonomy::OverheadPoint& p : points) {
      row.push_back(format_pct(p.elapsed_overhead));
      lo = std::min(lo, p.elapsed_overhead);
      hi = std::max(hi, p.elapsed_overhead);
    }
    table.add_row(std::move(row));
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf("\nMeasured elapsed-time overhead range: %s - %s\n",
              format_pct(lo).c_str(), format_pct(hi).c_str());
  std::printf("Paper's reported range:                24.0%% - 222.0%%\n");
  std::printf(
      "Variability relates directly to block size, as the paper observed:\n"
      "small blocks multiply both the in-band ptrace stops and the post-run\n"
      "trace merge work.\n");
  return lo > 0.10 && lo < 0.45 && hi > 1.5 && hi < 3.0 ? 0 : 1;
}
