// Sharded async batch flush vs inline batched delivery, and parallel vs
// serial unified-store scans.
//
// The gated metric is the *producer-visible* delivery cost — the CPU the
// capture hot path spends handing off its batches, measured with the
// producer thread's CPU clock (CLOCK_THREAD_CPUTIME_ID). Inline delivery
// pays the full summary aggregation on that path; async flush moves each
// owned batch into the AsyncBatchSink queue and returns, deferring
// aggregation to flush workers (the Recorder-style split the taxonomy's
// overhead axis rewards). Thread CPU time is exactly the overhead charged
// to the traced rank — what the paper's overhead axis measures — and it
// stays meaningful on any core count, where wall time would fold the flush
// workers' own time slices into the producer's number. Wall-clock
// end-to-end drain time is reported alongside. Gates:
//   - handoff >= 1.5x faster than inline batched SummarySink delivery,
//   - merged sharded summary byte-identical to the inline sink's,
//   - parallel store query results identical to the serial scan.
//
// Emits BENCH_async_flush.json (and the BENCH_JSON_BEGIN/END markers).
#include <ctime>

#include <chrono>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "analysis/unified_store.h"
#include "bench_common.h"
#include "trace/async_sink.h"
#include "trace/event_batch.h"
#include "trace/sink.h"
#include "util/strings.h"

namespace {

using namespace iotaxo;
using trace::AsyncBatchSink;
using trace::AsyncOptions;
using trace::EventBatch;
using trace::ShardedSummarySink;
using trace::SummarySink;
using trace::TraceEvent;

constexpr std::size_t kEvents = 200'000;
constexpr std::size_t kFlushUnit = 256;  // frameworks' default batch size
constexpr int kRanks = 32;
constexpr int kRepetitions = 5;
constexpr std::size_t kShards = 8;
constexpr std::size_t kWorkers = 2;
constexpr std::size_t kStoreSources = 8;

/// The same capture-shaped stream bench_batch_pipeline uses: a handful of
/// call names, per-rank hosts, shared paths, distinct offset args.
[[nodiscard]] std::vector<TraceEvent> synth_events() {
  static const char* kNames[] = {"SYS_write", "SYS_read",  "SYS_lseek",
                                 "SYS_open",  "SYS_close", "MPI_File_write_at",
                                 "write",     "read"};
  std::vector<TraceEvent> events;
  events.reserve(kEvents);
  for (std::size_t i = 0; i < kEvents; ++i) {
    TraceEvent ev = trace::make_syscall(
        kNames[i % (sizeof(kNames) / sizeof(kNames[0]))],
        {"5", "65536", strprintf("%zu", (i % 4096) * 65536)}, 65536);
    ev.rank = static_cast<int>(i % kRanks);
    ev.node = ev.rank;
    ev.pid = 10000 + static_cast<std::uint32_t>(ev.rank);
    ev.host = strprintf("host%02d.lanl.gov", ev.rank);
    ev.path = ev.rank % 2 == 0 ? "/pfs/shared/out.dat" : "/pfs/rank/out.dat";
    ev.fd = 5;
    ev.bytes = 65536;
    ev.offset = static_cast<Bytes>(i % 4096) * 65536;
    ev.local_start = static_cast<SimTime>(i) * kMicrosecond;
    ev.duration = 3 * kMicrosecond;
    events.push_back(std::move(ev));
  }
  return events;
}

/// Per-rank flush units, as RankBatcher would emit them.
[[nodiscard]] std::vector<EventBatch> capture_batches(
    const std::vector<TraceEvent>& events) {
  std::vector<EventBatch> per_rank(kRanks);
  std::vector<EventBatch> out;
  for (const TraceEvent& ev : events) {
    EventBatch& batch = per_rank[static_cast<std::size_t>(ev.rank)];
    batch.append(ev);
    if (batch.size() >= kFlushUnit) {
      out.push_back(std::exchange(batch, EventBatch{}));
    }
  }
  for (EventBatch& batch : per_rank) {
    if (!batch.empty()) {
      out.push_back(std::move(batch));
    }
  }
  return out;
}

[[nodiscard]] double seconds_since(
    std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// CPU seconds consumed by the calling thread — the cost a tracer charges
/// to the traced rank, independent of what other threads do with the cores.
[[nodiscard]] double thread_cpu_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

[[nodiscard]] double mevents_per_s(double seconds) {
  return static_cast<double>(kEvents) / seconds / 1e6;
}

[[nodiscard]] bool entries_identical(
    const std::map<std::string, SummarySink::Entry>& a,
    const std::map<std::string, SummarySink::Entry>& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (const auto& [name, entry] : a) {
    const auto it = b.find(name);
    if (it == b.end() || it->second.count != entry.count ||
        it->second.total_duration != entry.total_duration) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  const std::vector<TraceEvent> events = synth_events();
  const std::vector<EventBatch> batches = capture_batches(events);

  // --- inline batched delivery (the PR 1 baseline) ------------------------
  // Single-threaded, so thread CPU time == the producer's delivery cost.
  double inline_best = 1e100;
  SummarySink inline_sink;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    SummarySink sink;
    const double c0 = thread_cpu_seconds();
    for (const EventBatch& batch : batches) {
      sink.on_batch(batch);
    }
    sink.flush();
    inline_best = std::min(inline_best, thread_cpu_seconds() - c0);
    if (rep == 0) {
      inline_sink = std::move(sink);
    }
  }

  // --- sharded async flush ------------------------------------------------
  // Queue capacity covers the whole run (per-process buffering at benchmark
  // scale), so the handoff loop measures pure ownership transfer; flush()
  // is the drain barrier that completes aggregation.
  double handoff_best = 1e100;
  double total_best = 1e100;
  bool summaries_identical = true;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    auto sharded = std::make_shared<ShardedSummarySink>(kShards);
    AsyncOptions options;
    options.queue_capacity = batches.size();
    options.workers = kWorkers;
    options.concurrent_downstream = true;  // sharded sink is synchronized
    AsyncBatchSink async(sharded, options);
    std::vector<EventBatch> owned = batches;  // refill outside the timer
    const auto t0 = std::chrono::steady_clock::now();
    const double c0 = thread_cpu_seconds();
    for (EventBatch& batch : owned) {
      async.on_batch_owned(std::move(batch));
    }
    const double handoff = thread_cpu_seconds() - c0;
    async.flush();
    const double total = seconds_since(t0);
    handoff_best = std::min(handoff_best, handoff);
    total_best = std::min(total_best, total);
    summaries_identical = summaries_identical &&
                          sharded->total_events() == inline_sink.total_events() &&
                          entries_identical(sharded->entries(),
                                            inline_sink.entries());
  }
  const double handoff_speedup = inline_best / handoff_best;

  // --- parallel vs serial unified-store scans -----------------------------
  analysis::UnifiedTraceStore store;
  {
    const std::size_t chunk = kEvents / kStoreSources;
    for (std::size_t s = 0; s < kStoreSources; ++s) {
      EventBatch batch;
      const std::size_t begin = s * chunk;
      const std::size_t end =
          s + 1 == kStoreSources ? kEvents : begin + chunk;
      for (std::size_t i = begin; i < end; ++i) {
        batch.append(events[i]);
      }
      store.ingest(batch, {{"framework", "bench"},
                           {"application", strprintf("chunk%zu", s)}});
    }
  }
  const SimTime window_end = static_cast<SimTime>(kEvents) * kMicrosecond / 2;
  const SimTime bucket = from_millis(50.0);
  const auto run_queries = [&] {
    return std::tuple{store.call_stats(),
                      store.bytes_in_window(0, window_end),
                      store.io_rate_series(bucket), store.hottest_files(10)};
  };
  store.set_query_threads(1);
  double store_serial = 1e100;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    (void)run_queries();
    store_serial = std::min(store_serial, seconds_since(t0));
  }
  const auto serial_results = run_queries();
  store.set_query_threads(4);
  double store_parallel = 1e100;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    (void)run_queries();
    store_parallel = std::min(store_parallel, seconds_since(t0));
  }
  const bool store_identical = run_queries() == serial_results;

  // --- armed replay for the embedded metrics object -----------------------
  // Every timed loop above ran with self-metrics disarmed (the gated
  // numbers measure the one-relaxed-load path). Re-run one async drain and
  // one query mix armed so the artifact records what the bench exercises.
  const obs::MetricsSnapshot metrics_before = bench::metrics_baseline();
  {
    auto sharded = std::make_shared<ShardedSummarySink>(kShards);
    AsyncOptions options;
    options.queue_capacity = batches.size();
    options.workers = kWorkers;
    options.concurrent_downstream = true;
    AsyncBatchSink async(sharded, options);
    std::vector<EventBatch> owned = batches;
    for (EventBatch& batch : owned) {
      async.on_batch_owned(std::move(batch));
    }
    async.flush();
  }
  (void)run_queries();
  const std::string metrics_json = bench::metrics_delta_json(metrics_before);

  const std::string json = strprintf(
      "{\n"
      "  \"bench\": \"async_flush\",\n"
      "  \"events\": %zu,\n"
      "  \"flush_unit\": %zu,\n"
      "  \"shards\": %zu,\n"
      "  \"workers\": %zu,\n"
      "  \"delivery\": {\n"
      "    \"inline_cpu_mev_s\": %.2f,\n"
      "    \"async_handoff_cpu_mev_s\": %.2f,\n"
      "    \"async_drained_wall_mev_s\": %.2f,\n"
      "    \"handoff_speedup\": %.2f,\n"
      "    \"summaries_identical\": %s\n"
      "  },\n"
      "  \"store_queries\": {\n"
      "    \"serial_s\": %.4f,\n"
      "    \"parallel_s\": %.4f,\n"
      "    \"results_identical\": %s\n"
      "  },\n"
      "  \"metrics\": %s\n"
      "}\n",
      kEvents, kFlushUnit, kShards, kWorkers, mevents_per_s(inline_best),
      mevents_per_s(handoff_best), mevents_per_s(total_best), handoff_speedup,
      summaries_identical ? "true" : "false", store_serial, store_parallel,
      store_identical ? "true" : "false", metrics_json.c_str());

  std::printf("=== bench_async_flush ===\n");
  std::printf("delivery  inline %.2f Mev/s | async handoff %.2f Mev/s cpu "
              "(%.2fx) | drained %.2f Mev/s wall\n",
              mevents_per_s(inline_best), mevents_per_s(handoff_best),
              handoff_speedup, mevents_per_s(total_best));
  std::printf("store     serial %.1f ms | parallel(4) %.1f ms | identical=%s\n",
              store_serial * 1e3, store_parallel * 1e3,
              store_identical ? "yes" : "no");
  std::printf("BENCH_JSON_BEGIN\n%sBENCH_JSON_END\n", json.c_str());

  if (std::FILE* f = std::fopen("BENCH_async_flush.json", "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
  }
  // Acceptance gates: deferred delivery must beat inline by >= 1.5x on the
  // capture path with byte-identical merged summaries, and parallel store
  // scans must reproduce the serial results exactly.
  if (!summaries_identical || !store_identical || handoff_speedup < 1.5) {
    std::fprintf(stderr,
                 "FAIL: async handoff must be >= 1.5x inline with identical "
                 "results (got %.2fx, summaries_identical=%d, "
                 "store_identical=%d)\n",
                 handoff_speedup, summaries_identical ? 1 : 0,
                 store_identical ? 1 : 0);
    return 1;
  }
  return 0;
}
