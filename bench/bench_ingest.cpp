// Streaming ingest, persisted pool indexes, and the live DFG — the PR 10
// gates:
//
//   1. Feeding 1000 small flushes through a streaming store (era-aware
//      open batches) and then answering the five-query dashboard suite
//      must be >= 3x faster end to end than one-pool-per-flush ingest of
//      the same flushes, with bit-identical results. The win is
//      structural: the flush storm lands in a handful of era pools, so
//      per-pool constants stop multiplying by 1000.
//   2. Restart on a 1000-source store: attaching 1000 checksummed IOTB2
//      containers that carry persisted index footers and answering a
//      first indexed query must be >= 5x faster with index adoption than
//      with set_adopt_indexes(false) (scan-rebuild). Adoption reads the
//      footer instead of scanning records, and the lazy payload CRC never
//      fires for pools the query's index skip rejects.
//   3. A live-DFG snapshot over the streamed store must be >= 2x faster
//      than a cold DfgBuilder rebuild, and bit-identical to it.
//
// Emits BENCH_ingest.json. Gate floors live in the JSON next to the
// measured values (*_floor keys) so tools/check_build.sh --bench reads
// thresholds from the artifact instead of hard-coding them twice.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <tuple>
#include <vector>

#include "analysis/dfg/dfg.h"
#include "analysis/dfg/live_dfg.h"
#include "analysis/unified_store.h"
#include "bench_common.h"
#include "trace/binary_format.h"
#include "trace/event_batch.h"
#include "util/strings.h"

namespace {

using namespace iotaxo;
using analysis::UnifiedTraceStore;
using trace::EventBatch;
using trace::TraceEvent;

constexpr std::size_t kFlushes = 1000;
constexpr std::size_t kPerFlush = 10;
constexpr std::size_t kSources = 1000;
constexpr std::size_t kPerSource = 4000;
// Small enough that the 1000-flush storm seals a handful of eras (the
// bounded-pool-count story), large enough that an era still absorbs
// hundreds of flushes.
constexpr std::size_t kEraBytes = 128 * 1024;
constexpr int kRepetitions = 3;

constexpr double kIngestFloor = 3.0;
constexpr double kRestartFloor = 5.0;
constexpr double kLiveDfgFloor = 2.0;

/// One flush of the capture-shaped stream: a few ranks interleaving
/// transfer calls over shared paths, stamps advancing monotonically so
/// flushes (and sources) occupy disjoint eras.
[[nodiscard]] EventBatch make_flush(std::size_t flush, std::size_t count) {
  static const char* kNames[] = {"SYS_write", "SYS_read", "SYS_lseek",
                                 "MPI_File_write_at"};
  EventBatch batch;
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t seq = flush * count + i;
    TraceEvent ev = trace::make_syscall(
        kNames[seq % (sizeof(kNames) / sizeof(kNames[0]))],
        {"5", "65536", strprintf("%zu", (seq % 64) * 65536)}, 65536);
    ev.rank = static_cast<int>(seq % 8);
    ev.node = ev.rank;
    ev.host = strprintf("host%02d", ev.rank);
    ev.path = seq % 2 == 0 ? "/pfs/shared/out.dat" : "/pfs/rank/out.dat";
    ev.fd = 5;
    ev.bytes = 65536;
    ev.local_start = static_cast<SimTime>(seq) * kMicrosecond;
    ev.duration = 3 * kMicrosecond;
    batch.append(ev);
  }
  return batch;
}

/// Best-of-k wall time of `fn`, in seconds.
template <class Fn>
[[nodiscard]] double best_seconds(Fn&& fn) {
  double best = 1e100;
  for (int r = 0; r < kRepetitions; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    best = std::min(best, dt.count());
  }
  return best;
}

[[nodiscard]] auto five_queries(const UnifiedTraceStore& store,
                                SimTime span) {
  return std::tuple{store.call_stats(), store.rank_timeline(3),
                    store.bytes_in_window(span / 4, span / 2),
                    store.io_rate_series(from_millis(5.0)),
                    store.hottest_files(8)};
}

}  // namespace

int main() {
  // --- gate 1: 1000-flush ingest-to-queryable ------------------------------
  std::vector<EventBatch> flushes;
  flushes.reserve(kFlushes);
  for (std::size_t f = 0; f < kFlushes; ++f) {
    flushes.push_back(make_flush(f, kPerFlush));
  }
  const SimTime flush_span =
      static_cast<SimTime>(kFlushes * kPerFlush) * kMicrosecond;
  const std::map<std::string, std::string> meta = {{"framework", "bench"},
                                                   {"application", "ingest"}};
  analysis::StreamIngestOptions stream_options;
  stream_options.era_bytes = kEraBytes;
  const auto ingest_to_queryable = [&](bool streamed) {
    UnifiedTraceStore store;
    if (streamed) {
      store.set_stream_ingest(stream_options);
    }
    for (const EventBatch& flush : flushes) {
      store.ingest(flush, meta);
    }
    return std::pair{five_queries(store, flush_span), store.pool_count()};
  };
  const auto [streamed_results, streamed_pools] = ingest_to_queryable(true);
  const auto [per_flush_results, per_flush_pools] = ingest_to_queryable(false);
  const bool ingest_identical = streamed_results == per_flush_results;
  const double per_flush_s =
      best_seconds([&] { (void)ingest_to_queryable(false); });
  const double streamed_s =
      best_seconds([&] { (void)ingest_to_queryable(true); });
  const double ingest_speedup = per_flush_s / streamed_s;

  // --- gate 2: restart with persisted indexes ------------------------------
  const std::string dir =
      strprintf("/tmp/iotaxo_bench_ingest_%d", static_cast<int>(::getpid()));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  trace::BinaryOptions bopts;
  bopts.checksum = true;
  bopts.index_footer = true;
  for (std::size_t s = 0; s < kSources; ++s) {
    trace::write_binary_file(strprintf("%s/era-%zu.iotb", dir.c_str(), s),
                             encode_binary_v2(make_flush(s, kPerSource), bopts));
  }
  const SimTime source_span =
      static_cast<SimTime>(kSources * kPerSource) * kMicrosecond;
  // Restart = attach every container + the first indexed query of a
  // monitoring session (a narrow window past the capture's end: the pool
  // indexes reject every pool, so adopted restarts never touch a record).
  const auto restart = [&](bool adopt) {
    UnifiedTraceStore store;
    store.set_adopt_indexes(adopt);
    for (std::size_t s = 0; s < kSources; ++s) {
      store.ingest_view(strprintf("%s/era-%zu.iotb", dir.c_str(), s), meta);
    }
    return store.bytes_in_window(source_span + kSecond,
                                 source_span + 2 * kSecond);
  };
  const Bytes adopted_probe = restart(true);
  const Bytes rebuilt_probe = restart(false);
  const double rebuilt_s = best_seconds([&] { (void)restart(false); });
  const double adopted_s = best_seconds([&] { (void)restart(true); });
  const double restart_speedup = rebuilt_s / adopted_s;
  // Identity across the full suite, not just the probe: an adopted-index
  // store must answer everything exactly like a scan-rebuilt one.
  bool restart_identical = adopted_probe == rebuilt_probe;
  {
    UnifiedTraceStore adopted_store;
    UnifiedTraceStore rebuilt_store;
    rebuilt_store.set_adopt_indexes(false);
    for (std::size_t s = 0; s < kSources; ++s) {
      const std::string path = strprintf("%s/era-%zu.iotb", dir.c_str(), s);
      adopted_store.ingest_view(path, meta);
      rebuilt_store.ingest_view(path, meta);
    }
    restart_identical =
        restart_identical && five_queries(adopted_store, source_span) ==
                                 five_queries(rebuilt_store, source_span);
  }

  // --- gate 3: live DFG vs cold rebuild ------------------------------------
  namespace dfg = analysis::dfg;
  UnifiedTraceStore live_store;
  live_store.set_stream_ingest(stream_options);
  const std::unique_ptr<dfg::LiveDfg> live = dfg::set_live_dfg(live_store);
  for (const EventBatch& flush : flushes) {
    live_store.ingest(flush, meta);
  }
  const dfg::Dfg snap = live->snapshot();
  const dfg::Dfg cold = dfg::DfgBuilder(live_store).build();
  const bool dfg_identical = snap == cold;
  const double cold_s =
      best_seconds([&] { (void)dfg::DfgBuilder(live_store).build(); });
  const double live_s = best_seconds([&] { (void)live->snapshot(); });
  const double live_dfg_speedup = cold_s / live_s;

  const bool pass = ingest_identical && restart_identical && dfg_identical &&
                    streamed_pools * 10 <= per_flush_pools &&
                    ingest_speedup >= kIngestFloor &&
                    restart_speedup >= kRestartFloor &&
                    live_dfg_speedup >= kLiveDfgFloor;

  // --- armed replay for the embedded metrics object ------------------------
  // The gated timings above ran disarmed; one armed streamed ingest plus an
  // adopted restart feeds the artifact's "metrics" object (flush/era-seal/
  // adoption counters included).
  const obs::MetricsSnapshot metrics_before = bench::metrics_baseline();
  (void)ingest_to_queryable(true);
  (void)restart(true);
  const std::string metrics_json = bench::metrics_delta_json(metrics_before);
  std::filesystem::remove_all(dir);

  const std::string json = strprintf(
      "{\n"
      "  \"bench\": \"ingest\",\n"
      "  \"flushes\": %zu,\n"
      "  \"events_per_flush\": %zu,\n"
      "  \"restart_sources\": %zu,\n"
      "  \"streamed_pools\": %zu,\n"
      "  \"per_flush_pools\": %zu,\n"
      "  \"ingest_speedup\": %.2f,\n"
      "  \"ingest_speedup_floor\": %.1f,\n"
      "  \"ingest_identical\": %s,\n"
      "  \"restart_speedup\": %.2f,\n"
      "  \"restart_speedup_floor\": %.1f,\n"
      "  \"restart_identical\": %s,\n"
      "  \"live_dfg_speedup\": %.2f,\n"
      "  \"live_dfg_speedup_floor\": %.1f,\n"
      "  \"live_dfg_identical\": %s,\n"
      "  \"metrics\": %s\n"
      "}\n",
      kFlushes, kPerFlush, kSources, streamed_pools, per_flush_pools,
      ingest_speedup, kIngestFloor, ingest_identical ? "true" : "false",
      restart_speedup, kRestartFloor, restart_identical ? "true" : "false",
      live_dfg_speedup, kLiveDfgFloor, dfg_identical ? "true" : "false",
      metrics_json.c_str());

  std::printf("=== bench_ingest ===\n");
  std::printf("ingest    1000 flushes -> queryable %.2fx one-pool-per-flush "
              "(floor %.1fx) | %zu pools vs %zu\n",
              ingest_speedup, kIngestFloor, streamed_pools, per_flush_pools);
  std::printf("restart   attach+first query %.2fx scan-rebuild (floor %.1fx) "
              "| rebuilt %.1f ms, adopted %.1f ms\n",
              restart_speedup, kRestartFloor, rebuilt_s * 1e3,
              adopted_s * 1e3);
  std::printf("live dfg  snapshot %.2fx cold rebuild (floor %.1fx) | cold "
              "%.2f ms, live %.2f ms\n",
              live_dfg_speedup, kLiveDfgFloor, cold_s * 1e3, live_s * 1e3);
  std::printf("BENCH_JSON_BEGIN\n%sBENCH_JSON_END\n", json.c_str());

  if (std::FILE* f = std::fopen("BENCH_ingest.json", "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
  }
  if (!pass) {
    std::fprintf(stderr,
                 "FAIL: ingest gates (ingest %.2fx >= %.1fx: %d, restart "
                 "%.2fx >= %.1fx: %d, live dfg %.2fx >= %.1fx: %d, "
                 "identical ingest=%d restart=%d dfg=%d, pools %zu vs %zu)\n",
                 ingest_speedup, kIngestFloor, ingest_speedup >= kIngestFloor,
                 restart_speedup, kRestartFloor,
                 restart_speedup >= kRestartFloor, live_dfg_speedup,
                 kLiveDfgFloor, live_dfg_speedup >= kLiveDfgFloor,
                 ingest_identical, restart_identical, dfg_identical,
                 streamed_pools, per_flush_pools);
    return 1;
  }
  return 0;
}
