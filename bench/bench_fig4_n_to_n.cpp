// Figure 4: "LANL-Trace overhead with N processes writing N 10GB files. We
// observe bandwidth overhead similar to that of N to 1, non-strided."
// (Similar *shape*; at large blocks the N-to-N overhead all but vanishes —
// 0.6% at 8 MiB in §4.1.2 — because exclusive files have no lock coupling.)
#include "fig_overhead_sweep.h"

int main() {
  return iotaxo::bench::run_figure_bench(
      iotaxo::workload::Pattern::kNtoN,
      "Figure 4 — N-to-N, 32 processes, one file per process",
      "Konwinski et al., SC'07, Figure 4 (total scaled N x 10 GiB -> 4 GiB)",
      "same decaying-overhead shape as Figure 3, with near-zero overhead at "
      "large blocks (no shared-file lock coupling)",
      /*min_bw_growth=*/1.05);  // N-to-N saturates early: no per-op lock
                                // contention to amortize away
}
