// Batched vs per-event delivery through the trace pipeline, and binary v1
// (IOTB1, inline strings) vs v2 (IOTB2, interned string table) codec cost.
//
// Emits the measurements as BENCH_*.json-compatible output: a JSON object
// printed to stdout (between BENCH_JSON_BEGIN/END markers) and written to
// BENCH_batch_pipeline.json in the working directory.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "trace/binary_format.h"
#include "trace/event_batch.h"
#include "trace/sink.h"
#include "util/strings.h"

namespace {

using namespace iotaxo;
using trace::EventBatch;
using trace::SummarySink;
using trace::TraceEvent;

constexpr std::size_t kEvents = 200'000;
constexpr std::size_t kFlushUnit = 256;  // frameworks' default batch size
constexpr int kRepetitions = 5;

/// A capture-shaped stream: a handful of call names, per-rank hosts, a few
/// shared paths, distinct offset args — the string mix the interposers
/// actually emit.
[[nodiscard]] std::vector<TraceEvent> synth_events() {
  static const char* kNames[] = {"SYS_write", "SYS_read",  "SYS_lseek",
                                 "SYS_open",  "SYS_close", "MPI_File_write_at",
                                 "write",     "read"};
  std::vector<TraceEvent> events;
  events.reserve(kEvents);
  for (std::size_t i = 0; i < kEvents; ++i) {
    TraceEvent ev = trace::make_syscall(
        kNames[i % (sizeof(kNames) / sizeof(kNames[0]))],
        {"5", "65536", strprintf("%zu", (i % 4096) * 65536)},
        65536);
    ev.rank = static_cast<int>(i % 32);
    ev.node = ev.rank;
    ev.pid = 10000 + static_cast<std::uint32_t>(ev.rank);
    ev.host = strprintf("host%02d.lanl.gov", ev.rank);
    ev.path = ev.rank % 2 == 0 ? "/pfs/shared/out.dat" : "/pfs/rank/out.dat";
    ev.fd = 5;
    ev.bytes = 65536;
    ev.offset = static_cast<Bytes>(i % 4096) * 65536;
    ev.local_start = static_cast<SimTime>(i) * kMicrosecond;
    ev.duration = 3 * kMicrosecond;
    events.push_back(std::move(ev));
  }
  return events;
}

/// Best-of-k wall time of `fn`, in seconds.
template <class Fn>
[[nodiscard]] double best_seconds(Fn&& fn) {
  double best = 1e100;
  for (int r = 0; r < kRepetitions; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

[[nodiscard]] double mevents_per_s(double seconds) {
  return static_cast<double>(kEvents) / seconds / 1e6;
}

}  // namespace

int main() {
  const std::vector<TraceEvent> events = synth_events();

  // Pre-build the batched view in capture-sized flush units, as the
  // RankBatcher hands them to sinks.
  std::vector<EventBatch> batches;
  for (std::size_t begin = 0; begin < events.size(); begin += kFlushUnit) {
    EventBatch batch;
    const std::size_t end = std::min(events.size(), begin + kFlushUnit);
    for (std::size_t i = begin; i < end; ++i) {
      batch.append(events[i]);
    }
    batches.push_back(std::move(batch));
  }

  // --- SummarySink delivery: per-event vs batched -------------------------
  long long check_per_event = 0;
  const double summary_per_event = best_seconds([&] {
    SummarySink sink;
    for (const TraceEvent& ev : events) {
      sink.on_event(ev);
    }
    check_per_event = sink.total_events();
  });
  long long check_batched = 0;
  SimTime dur_per_event = 0;
  SimTime dur_batched = 0;
  {
    SummarySink a;
    SummarySink b;
    for (const TraceEvent& ev : events) {
      a.on_event(ev);
    }
    for (const EventBatch& batch : batches) {
      b.on_batch(batch);
    }
    dur_per_event = a.entries().at("SYS_write").total_duration;
    dur_batched = b.entries().at("SYS_write").total_duration;
  }
  const double summary_batched = best_seconds([&] {
    SummarySink sink;
    for (const EventBatch& batch : batches) {
      sink.on_batch(batch);
    }
    check_batched = sink.total_events();
  });

  // --- CountingSink delivery ----------------------------------------------
  // The sink totals feed a volatile so the optimizer cannot drop the loops.
  volatile Bytes counting_guard = 0;
  const double counting_per_event = best_seconds([&] {
    trace::CountingSink sink;
    for (const TraceEvent& ev : events) {
      sink.on_event(ev);
    }
    counting_guard = sink.total_bytes() + sink.count();
  });
  const double counting_batched = best_seconds([&] {
    trace::CountingSink sink;
    for (const EventBatch& batch : batches) {
      sink.on_batch(batch);
    }
    counting_guard = sink.total_bytes() + sink.count();
  });
  (void)counting_guard;

  // --- binary codecs: v1 vs v2 --------------------------------------------
  EventBatch whole = EventBatch::from_events(events);
  const trace::BinaryOptions opts;  // checksummed, plain
  std::vector<std::uint8_t> v1_blob;
  std::vector<std::uint8_t> v2_blob;
  const double v1_encode = best_seconds([&] {
    v1_blob = trace::encode_binary(events, opts);
  });
  const double v2_encode = best_seconds([&] {
    v2_blob = trace::encode_binary_v2(whole, opts);
  });
  const double v1_decode = best_seconds([&] {
    (void)trace::decode_binary(v1_blob);
  });
  const double v2_decode_batch = best_seconds([&] {
    (void)trace::decode_binary_batch(v2_blob);
  });

  const double summary_speedup = summary_per_event / summary_batched;
  const bool identical =
      check_per_event == check_batched && dur_per_event == dur_batched;

  // --- armed replay for the embedded metrics object -----------------------
  // This bench exercises only plain sinks and the v1/v2 codecs, none of
  // which carry self-metrics instrumentation — the armed replay documents
  // that: an empty object means the pipeline stages here stay metric-free.
  const obs::MetricsSnapshot metrics_before = bench::metrics_baseline();
  {
    SummarySink sink;
    for (const EventBatch& batch : batches) {
      sink.on_batch(batch);
    }
    sink.flush();
  }
  const std::string metrics_json = bench::metrics_delta_json(metrics_before);

  const std::string json = strprintf(
      "{\n"
      "  \"bench\": \"batch_pipeline\",\n"
      "  \"events\": %zu,\n"
      "  \"flush_unit\": %zu,\n"
      "  \"summary_sink\": {\n"
      "    \"per_event_mev_s\": %.2f,\n"
      "    \"batched_mev_s\": %.2f,\n"
      "    \"speedup\": %.2f,\n"
      "    \"results_identical\": %s\n"
      "  },\n"
      "  \"counting_sink\": {\n"
      "    \"per_event_mev_s\": %.2f,\n"
      "    \"batched_mev_s\": %.2f,\n"
      "    \"speedup\": %.2f\n"
      "  },\n"
      "  \"binary\": {\n"
      "    \"v1_bytes\": %zu,\n"
      "    \"v2_bytes\": %zu,\n"
      "    \"v2_size_ratio\": %.3f,\n"
      "    \"v1_encode_mev_s\": %.2f,\n"
      "    \"v2_encode_mev_s\": %.2f,\n"
      "    \"v1_decode_mev_s\": %.2f,\n"
      "    \"v2_decode_batch_mev_s\": %.2f\n"
      "  },\n"
      "  \"metrics\": %s\n"
      "}\n",
      kEvents, kFlushUnit, mevents_per_s(summary_per_event),
      mevents_per_s(summary_batched), summary_speedup,
      identical ? "true" : "false", mevents_per_s(counting_per_event),
      mevents_per_s(counting_batched), counting_per_event / counting_batched,
      v1_blob.size(), v2_blob.size(),
      static_cast<double>(v2_blob.size()) / static_cast<double>(v1_blob.size()),
      mevents_per_s(v1_encode), mevents_per_s(v2_encode),
      mevents_per_s(v1_decode), mevents_per_s(v2_decode_batch),
      metrics_json.c_str());

  std::printf("=== bench_batch_pipeline ===\n");
  std::printf("SummarySink  per-event %.2f Mev/s | batched %.2f Mev/s | %.2fx\n",
              mevents_per_s(summary_per_event), mevents_per_s(summary_batched),
              summary_speedup);
  std::printf("CountingSink per-event %.2f Mev/s | batched %.2f Mev/s | %.2fx\n",
              mevents_per_s(counting_per_event),
              mevents_per_s(counting_batched),
              counting_per_event / counting_batched);
  std::printf("binary       v1 %zu B -> v2 %zu B (%.1f%%)\n", v1_blob.size(),
              v2_blob.size(),
              100.0 * static_cast<double>(v2_blob.size()) /
                  static_cast<double>(v1_blob.size()));
  std::printf("BENCH_JSON_BEGIN\n%sBENCH_JSON_END\n", json.c_str());

  if (std::FILE* f = std::fopen("BENCH_batch_pipeline.json", "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
  }
  // Gate for the acceptance criterion: identical results, >= 2x throughput.
  if (!identical || summary_speedup < 2.0) {
    std::fprintf(stderr,
                 "FAIL: batched SummarySink must match per-event results and "
                 "be >= 2x faster (got %.2fx, identical=%d)\n",
                 summary_speedup, identical ? 1 : 0);
    return 1;
  }
  return 0;
}
