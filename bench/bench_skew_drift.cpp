// Skew & drift accounting (§3.1 / §4.1.1): LANL-Trace's pre/post barrier
// job lets analysis recover per-node clock skew and drift. This bench
// injects known clock errors, runs the probe job, and reports how well the
// correction aligns distributed timestamps.
#include "bench_common.h"
#include "analysis/skew_drift.h"

using namespace iotaxo;

int main() {
  bench::print_header(
      "Skew & drift accounting",
      "Konwinski et al., SC'07, §3.1 'Accounts for time drift and skew' / "
      "§4.1.1");

  sim::ClusterParams cparams;
  cparams.node_count = 16;
  cparams.max_skew = from_millis(250.0);
  cparams.max_drift_ppm = 40.0;
  const sim::Cluster cluster(cparams);

  workload::MpiIoTestParams params;
  params.nranks = 16;
  params.block = 1 * kMiB;
  params.total_bytes = 512 * kMiB;

  frameworks::LanlTrace lanl;
  frameworks::TraceJobOptions options;
  options.store_raw_streams = true;
  const frameworks::TraceRunResult result =
      lanl.trace(cluster, workload::make_mpi_io_test(params),
                 std::make_shared<pfs::Pfs>(), options);

  const analysis::SkewDriftModel model =
      analysis::SkewDriftModel::fit(result.bundle.clock_probes);

  TextTable table({"Rank", "Injected offset", "Estimated offset",
                   "Injected drift (ppm)", "Estimated drift (ppm)"});
  for (std::size_t c = 1; c < 5; ++c) {
    table.set_align(c, Align::kRight);
  }
  // Offsets are recoverable only relative to the fleet; report both columns
  // relative to rank 0.
  const SimTime inj0 = cluster.node(0).clock.offset();
  const SimTime est0 = model.estimate(0).offset;
  const double injd0 = cluster.node(0).clock.drift_ppm();
  const double estd0 = model.estimate(0).drift_ppm;
  for (int r = 0; r < 8; ++r) {
    table.add_row(
        {strprintf("%d", r),
         format_duration(cluster.node(r).clock.offset() - inj0),
         format_duration(model.estimate(r).offset - est0),
         strprintf("%+.1f", cluster.node(r).clock.drift_ppm() - injd0),
         strprintf("%+.1f", model.estimate(r).drift_ppm - estd0)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("(first 8 of %d ranks shown; offsets relative to rank 0)\n\n",
              cparams.node_count);

  // Quantify correction quality on the io_end barrier exits.
  SimTime raw_min = 0, raw_max = 0, cor_min = 0, cor_max = 0;
  bool first = true;
  for (const trace::TraceEvent& ev : result.bundle.barrier_events) {
    if (ev.path != "io_end") {
      continue;
    }
    const SimTime raw = ev.local_start + ev.duration;
    const SimTime corrected = model.correct(ev.rank, raw);
    if (first) {
      raw_min = raw_max = raw;
      cor_min = cor_max = corrected;
      first = false;
    } else {
      raw_min = std::min(raw_min, raw);
      raw_max = std::max(raw_max, raw);
      cor_min = std::min(cor_min, corrected);
      cor_max = std::max(cor_max, corrected);
    }
  }
  const SimTime raw_spread = raw_max - raw_min;
  const SimTime cor_spread = cor_max - cor_min;
  std::printf("Apparent spread of one barrier's exits across ranks:\n");
  std::printf("  raw node-local timestamps : %s\n",
              format_duration(raw_spread).c_str());
  std::printf("  after skew/drift correction: %s\n",
              format_duration(cor_spread).c_str());
  std::printf("  improvement: %.0fx\n",
              static_cast<double>(raw_spread) /
                  static_cast<double>(std::max<SimTime>(cor_spread, 1)));
  return cor_spread * 10 < raw_spread ? 0 : 1;
}
