// Shared helpers for the reproduction benches: the paper-testbed cluster
// (32 processors, gigabit Ethernet), fresh-PFS factories, and formatting
// of paper-vs-measured rows.
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "frameworks/lanl_trace.h"
#include "fs/memfs.h"
#include "pfs/pfs.h"
#include "sim/cluster.h"
#include "taxonomy/overhead.h"
#include "util/metrics.h"
#include "util/strings.h"
#include "util/table.h"
#include "workload/mpi_io_test.h"

namespace iotaxo::bench {

/// The paper's testbed: 32 processors, Linux 2.6, gigabit Ethernet, RAID-5
/// parallel file system with 64 KiB stripes over 252 drives.
[[nodiscard]] inline sim::Cluster paper_cluster() {
  sim::ClusterParams params;
  params.node_count = 32;
  return sim::Cluster(params);
}

[[nodiscard]] inline taxonomy::VfsFactory pfs_factory() {
  return [] { return std::make_shared<pfs::Pfs>(); };
}

[[nodiscard]] inline taxonomy::VfsFactory local_factory() {
  return [] { return std::make_shared<fs::MemFs>(); };
}

/// Benches run a scaled-down total (the simulator reproduces overhead
/// *ratios*, which are scale-free once per-run constants are amortized;
/// EXPERIMENTS.md documents the scaling).
inline constexpr Bytes kScaledTotalN1 = 4 * kGiB;   // paper: one 100 GiB file
inline constexpr Bytes kScaledTotalNN = 4 * kGiB;   // paper: N x 10 GiB files

inline void print_header(const std::string& title,
                         const std::string& paper_ref) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("Reproduces: %s\n\n", paper_ref.c_str());
}

/// Render one figure sweep as a table of block size vs bandwidths/overheads.
inline void print_sweep(const std::vector<taxonomy::OverheadPoint>& points) {
  TextTable table({"Block size", "BW untraced (MiB/s)", "BW traced (MiB/s)",
                   "BW overhead", "Elapsed overhead", "Events"});
  for (std::size_t c = 1; c < 6; ++c) {
    table.set_align(c, Align::kRight);
  }
  for (const taxonomy::OverheadPoint& p : points) {
    table.add_row({format_bytes(p.block), strprintf("%.1f", p.bw_untraced_mibps),
                   strprintf("%.1f", p.bw_traced_mibps),
                   format_pct(p.bandwidth_overhead),
                   format_pct(p.elapsed_overhead),
                   strprintf("%lld", p.events)});
  }
  std::fputs(table.render().c_str(), stdout);
}

/// Arm the self-metrics layer (util/metrics.h) and return the baseline
/// snapshot for metrics_delta_json(). Benches call this *after* their
/// timed floor loops — the gated measurements stay on the disarmed path;
/// only the armed replay pass that follows feeds the "metrics" object
/// embedded in the BENCH_*.json artifact.
[[nodiscard]] inline obs::MetricsSnapshot metrics_baseline() {
  obs::set_enabled(true);
  return obs::snapshot();
}

/// Flatten the nonzero part of (now - baseline) into a JSON object body
/// for embedding as `"metrics": {...}` next to a bench's floors: counters
/// emit their delta, gauges their high-water mark, histograms ".count"
/// and ".sum". Dotted metric names never match the `[A-Za-z0-9_]+` floor
/// keys tools/check_build.sh gates on, so the object cannot perturb
/// gating. An empty object means the bench's armed replay touched no
/// instrumented layer.
[[nodiscard]] inline std::string metrics_delta_json(
    const obs::MetricsSnapshot& before) {
  const obs::MetricsSnapshot d = obs::delta(before, obs::snapshot());
  std::string out = "{";
  bool first = true;
  const auto emit = [&](const std::string& key, std::uint64_t v) {
    if (v == 0) {
      return;
    }
    out += strprintf("%s\n    \"%s\": %llu", first ? "" : ",", key.c_str(),
                     static_cast<unsigned long long>(v));
    first = false;
  };
  for (const auto& [name, m] : d.values) {
    switch (m.kind) {
      case obs::MetricKind::kCounter:
        emit(name, m.value);
        break;
      case obs::MetricKind::kGauge:
        emit(name + ".high_water", m.high_water);
        break;
      case obs::MetricKind::kHistogram:
        emit(name + ".count", m.count);
        emit(name + ".sum", m.sum);
        break;
    }
  }
  out += first ? "}" : "\n  }";
  return out;
}

}  // namespace iotaxo::bench
