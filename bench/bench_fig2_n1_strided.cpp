// Figure 2: "LANL-Trace overhead with N processes writing one 100GB file,
// strided. This is the benchmark parameterization most demanding on the
// parallel I/O file system. We observe bandwidth as a logarithmic function
// of block size and an approximately constant I/O bandwidth overhead."
#include "fig_overhead_sweep.h"

int main() {
  return iotaxo::bench::run_figure_bench(
      iotaxo::workload::Pattern::kNto1Strided,
      "Figure 2 — N-to-1 strided, 32 processes, one shared file",
      "Konwinski et al., SC'07, Figure 2 (total scaled 100 GiB -> 4 GiB)",
      "bandwidth saturates with block size; traced bandwidth tracks a "
      "roughly constant factor below untraced");
}
