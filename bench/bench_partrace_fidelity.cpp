// //TRACE's headline trade-off (§2.3/§4.3): the sampling knob controls both
// the elapsed-time overhead ("~0% to 205%") of the throttling-based capture
// and the completeness of the dependency map, and hence replay fidelity
// ("as low as 6%").
#include "analysis/bandwidth.h"
#include "bench_common.h"
#include "frameworks/partrace.h"
#include "replay/replayer.h"
#include "workload/probe_app.h"

using namespace iotaxo;

int main() {
  bench::print_header(
      "//TRACE sampling sweep: overhead vs replay fidelity",
      "Konwinski et al., SC'07, §2.3/§4.3 (overhead ~0%..205%, fidelity as "
      "low as 6%)");

  sim::ClusterParams cparams;
  cparams.node_count = 8;
  const sim::Cluster cluster(cparams);

  workload::ProbeAppParams app;
  app.nranks = 8;
  app.phases = 32;
  app.blocks_per_phase = 8;
  const mpi::Job job = workload::make_probe_app(app);

  // Untraced baseline.
  const mpi::RunResult baseline =
      frameworks::run_untraced(cluster, job, std::make_shared<pfs::Pfs>());

  TextTable table({"Sampling", "Deps found", "Elapsed overhead",
                   "Replay runtime error", "Replay op-mix error"});
  for (std::size_t c = 1; c < 5; ++c) {
    table.set_align(c, Align::kRight);
  }

  double overhead_at_zero = 1e9;
  double overhead_at_full = 0.0;
  double fidelity_at_full = 1.0;
  std::vector<double> fidelity_curve;
  for (const double sampling : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    frameworks::PartraceParams params;
    params.sampling = sampling;
    frameworks::Partrace partrace(params);
    frameworks::TraceJobOptions options;
    options.store_raw_streams = true;
    const frameworks::TraceRunResult traced =
        partrace.trace(cluster, job, std::make_shared<pfs::Pfs>(), options);
    const double overhead = analysis::elapsed_time_overhead(
        traced.apparent_elapsed, baseline.elapsed);

    replay::Replayer replayer(cluster, std::make_shared<pfs::Pfs>());
    const analysis::FidelityReport report = replayer.verify(
        traced.bundle, traced.run.elapsed, partrace.replay_options());
    fidelity_curve.push_back(report.runtime_error);

    if (sampling == 0.0) {
      overhead_at_zero = overhead;
    }
    if (sampling == 1.0) {
      overhead_at_full = overhead;
      fidelity_at_full = report.runtime_error;
    }
    table.add_row({strprintf("%.2f", sampling),
                   strprintf("%zu", traced.bundle.dependencies.size()),
                   format_pct(overhead), format_pct(report.runtime_error),
                   format_pct(report.op_mix_error)});
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf(
      "\nPaper: overhead tunable ~0%%..205%%; measured %s at sampling 0 and "
      "%s at sampling 1.\n",
      format_pct(overhead_at_zero).c_str(),
      format_pct(overhead_at_full).c_str());
  std::printf("Paper: replay fidelity as low as 6%%; measured %s at full "
              "sampling.\n",
              format_pct(fidelity_at_full).c_str());

  const bool overhead_grows = overhead_at_full > overhead_at_zero + 0.2;
  const bool fidelity_best_at_full =
      fidelity_at_full <= fidelity_curve.front() + 1e-9;
  std::printf("Overhead grows with sampling: %s\n",
              overhead_grows ? "YES" : "NO");
  std::printf("Fidelity best at full sampling: %s\n",
              fidelity_best_at_full ? "YES" : "NO");
  return overhead_grows && fidelity_at_full < 0.25 ? 0 : 1;
}
