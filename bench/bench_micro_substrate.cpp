// google-benchmark microbenchmarks for the substrate: trace-record
// encode/decode, text rendering/parsing, XTEA-CBC, LZ compression, PFS
// write-cost evaluation and runtime op throughput. These quantify the
// *simulator's own* costs (host time), complementing the virtual-time
// benches that reproduce the paper's numbers.
#include <benchmark/benchmark.h>

#include "frameworks/lanl_trace.h"
#include "fs/memfs.h"
#include "mpi/runtime.h"
#include "pfs/pfs.h"
#include "sim/cluster.h"
#include "trace/binary_format.h"
#include "trace/text_format.h"
#include "util/cipher.h"
#include "util/compress.h"
#include "util/rng.h"
#include "util/strings.h"
#include "workload/mpi_io_test.h"

namespace {

using namespace iotaxo;

[[nodiscard]] std::vector<trace::TraceEvent> make_events(std::size_t n) {
  std::vector<trace::TraceEvent> events;
  events.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    trace::TraceEvent ev = trace::make_syscall(
        "SYS_write",
        {"5", "65536", strprintf("%zu", i * 65536)}, 65536);
    ev.local_start = 1159808385LL * kSecond + static_cast<SimTime>(i) * 31000;
    ev.duration = 31 * kMicrosecond;
    ev.rank = static_cast<int>(i % 32);
    ev.host = "host13.lanl.gov";
    ev.pid = 10378;
    ev.fd = 5;
    ev.bytes = 65536;
    ev.offset = static_cast<Bytes>(i) * 65536;
    events.push_back(std::move(ev));
  }
  return events;
}

void BM_BinaryEncode(benchmark::State& state) {
  const auto events = make_events(static_cast<std::size_t>(state.range(0)));
  trace::BinaryOptions options;
  for (auto _ : state) {
    benchmark::DoNotOptimize(trace::encode_binary(events, options));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BinaryEncode)->Arg(100)->Arg(10000);

void BM_BinaryDecode(benchmark::State& state) {
  const auto events = make_events(static_cast<std::size_t>(state.range(0)));
  const auto blob = trace::encode_binary(events, {});
  for (auto _ : state) {
    benchmark::DoNotOptimize(trace::decode_binary(blob));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BinaryDecode)->Arg(100)->Arg(10000);

void BM_TextRender(benchmark::State& state) {
  const auto events = make_events(static_cast<std::size_t>(state.range(0)));
  trace::TextTraceWriter::StreamMeta meta{"host13.lanl.gov", 7, 10378};
  for (auto _ : state) {
    benchmark::DoNotOptimize(trace::TextTraceWriter::render(meta, events));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TextRender)->Arg(1000);

void BM_TextParse(benchmark::State& state) {
  const auto events = make_events(static_cast<std::size_t>(state.range(0)));
  trace::TextTraceWriter::StreamMeta meta{"host13.lanl.gov", 7, 10378};
  const std::string text = trace::TextTraceWriter::render(meta, events);
  for (auto _ : state) {
    benchmark::DoNotOptimize(trace::TextTraceParser::parse(text));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TextParse)->Arg(1000);

void BM_XteaCbc(benchmark::State& state) {
  Rng rng(1);
  std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)));
  for (auto& b : data) {
    b = static_cast<std::uint8_t>(rng.uniform(0, 255));
  }
  const CipherKey key = derive_key("bench");
  for (auto _ : state) {
    benchmark::DoNotOptimize(cbc_encrypt(data, key, 1));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_XteaCbc)->Arg(4096)->Arg(65536);

void BM_LzCompressTraceText(benchmark::State& state) {
  const auto events = make_events(static_cast<std::size_t>(state.range(0)));
  trace::TextTraceWriter::StreamMeta meta{"host13.lanl.gov", 7, 10378};
  const std::string text = trace::TextTraceWriter::render(meta, events);
  const std::vector<std::uint8_t> data(text.begin(), text.end());
  for (auto _ : state) {
    benchmark::DoNotOptimize(lz_compress(data));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_LzCompressTraceText)->Arg(1000);

void BM_PfsWriteCost(benchmark::State& state) {
  pfs::Pfs fs;
  fs::OpCtx ctx;
  ctx.hint = fs::AccessHint::kStrided;
  std::vector<int> fds;
  for (int r = 0; r < 32; ++r) {
    fs::OpCtx open_ctx = ctx;
    open_ctx.rank = r;
    fds.push_back(static_cast<int>(
        fs.open("/pfs/bench.out", fs::OpenMode::write_create(), open_ctx)
            .value));
  }
  Bytes offset = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fs.write(fds[0], offset, 64 * kKiB, ctx));
    offset += 64 * kKiB;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PfsWriteCost);

void BM_SimulatedJob(benchmark::State& state) {
  // Host cost of simulating one full traced mpi_io_test run.
  sim::ClusterParams cparams;
  cparams.node_count = 32;
  const sim::Cluster cluster(cparams);
  workload::MpiIoTestParams params;
  params.nranks = 32;
  params.block = static_cast<Bytes>(state.range(0)) * kKiB;
  params.total_bytes = kGiB;
  const mpi::Job job = workload::make_mpi_io_test(params);
  frameworks::LanlTrace lanl;
  frameworks::TraceJobOptions options;
  options.store_raw_streams = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        lanl.trace(cluster, job, std::make_shared<pfs::Pfs>(), options));
  }
}
BENCHMARK(BM_SimulatedJob)->Arg(64)->Arg(1024)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
