// Figure 3: "LANL-Trace performance overhead, N processes writing one 100GB
// file, non-strided. Bandwidth overhead approaches a constant factor of
// untraced application bandwidth as block size is increased."
#include "fig_overhead_sweep.h"

int main() {
  return iotaxo::bench::run_figure_bench(
      iotaxo::workload::Pattern::kNto1NonStrided,
      "Figure 3 — N-to-1 non-strided, 32 processes, one shared file",
      "Konwinski et al., SC'07, Figure 3 (total scaled 100 GiB -> 4 GiB)",
      "bandwidth overhead decays toward a small constant as block size "
      "increases");
}
