// §4.1.2 numeric anchors, paper-vs-measured:
//   "At block sizes of 64KB, we saw bandwidth overheads of 51.3%, 64.7%,
//    and 68.6% [N-1 strided, N-1 non-strided, N-N]. For block sizes of
//    8192KB, bandwidth overheads were 5.5%, 6.1%, and 0.6%."
#include "bench_common.h"

using namespace iotaxo;
using bench::paper_cluster;
using bench::pfs_factory;

namespace {

struct Anchor {
  workload::Pattern pattern;
  Bytes block;
  double paper;
};

}  // namespace

int main() {
  bench::print_header("§4.1.2 bandwidth-overhead anchors",
                      "Konwinski et al., SC'07, Section 4.1.2");

  const sim::Cluster cluster = paper_cluster();
  taxonomy::OverheadHarness harness(cluster, pfs_factory());
  frameworks::LanlTrace lanl;

  const std::vector<Anchor> anchors = {
      {workload::Pattern::kNto1Strided, 64 * kKiB, 0.513},
      {workload::Pattern::kNto1NonStrided, 64 * kKiB, 0.647},
      {workload::Pattern::kNtoN, 64 * kKiB, 0.686},
      {workload::Pattern::kNto1Strided, 8192 * kKiB, 0.055},
      {workload::Pattern::kNto1NonStrided, 8192 * kKiB, 0.061},
      {workload::Pattern::kNtoN, 8192 * kKiB, 0.006},
  };

  TextTable table({"Pattern", "Block size", "Paper", "Measured", "Delta"});
  table.set_align(2, Align::kRight);
  table.set_align(3, Align::kRight);
  table.set_align(4, Align::kRight);

  double worst_rel = 0.0;
  for (const Anchor& anchor : anchors) {
    workload::MpiIoTestParams params;
    params.pattern = anchor.pattern;
    params.nranks = 32;
    params.block = anchor.block;
    params.total_bytes = bench::kScaledTotalN1;
    const taxonomy::OverheadPoint p =
        harness.measure(lanl, workload::make_mpi_io_test(params));
    const double rel =
        std::abs(p.bandwidth_overhead - anchor.paper) / anchor.paper;
    worst_rel = std::max(worst_rel, rel);
    table.add_row({to_string(anchor.pattern), format_bytes(anchor.block),
                   format_pct(anchor.paper), format_pct(p.bandwidth_overhead),
                   strprintf("%+.1f%% rel", rel * 100.0)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("\nWorst relative deviation from the paper: %.1f%%\n",
              worst_rel * 100.0);
  std::printf(
      "Mechanism (paper's own explanation): a constant number of traced\n"
      "events per block means overhead ~ 1/blocksize; shared-file patterns\n"
      "amplify each ptrace stop through stripe-lock coupling.\n");
  return worst_rel < 0.35 ? 0 : 1;
}
