// Ablation: the stripe-lock coupling factor.
//
// DESIGN.md's central modeling choice is that a tracer-stopped process
// holding shared-file stripe locks stalls its peers (amplification
// 1 + coupling*(W-1)). This bench sweeps the coupling from 0 to 1 and shows
// that (a) without coupling the N-to-1 overheads collapse to N-to-N levels
// and the paper's §4.1.2 anchors become unreachable, and (b) the default
// 0.5 is the value that lands them.
#include "bench_common.h"

using namespace iotaxo;

int main() {
  bench::print_header(
      "Ablation — tracer stall amplification via stripe-lock coupling",
      "design choice behind the §4.1.2 anchors (51.3%/64.7% N-to-1 vs "
      "68.6% N-to-N at 64 KiB, but 5.5%/6.1% vs 0.6% at 8 MiB)");

  const sim::Cluster cluster = bench::paper_cluster();
  frameworks::LanlTrace lanl;

  TextTable table({"Coupling", "N-1 strided @64K", "N-1 strided @8M",
                   "N-to-N @64K", "N-to-N @8M"});
  for (std::size_t c = 1; c < 5; ++c) {
    table.set_align(c, Align::kRight);
  }

  double strided_64k_at_default = 0.0;
  double strided_64k_at_zero = 0.0;
  for (const double coupling : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    taxonomy::OverheadHarness harness(cluster, [coupling] {
      pfs::PfsParams params;
      params.tracer_lock_coupling = coupling;
      return std::make_shared<pfs::Pfs>(params);
    });
    std::vector<std::string> row{strprintf("%.2f", coupling)};
    for (const auto& [pattern, block] :
         {std::pair{workload::Pattern::kNto1Strided, 64 * kKiB},
          std::pair{workload::Pattern::kNto1Strided, 8 * kMiB},
          std::pair{workload::Pattern::kNtoN, 64 * kKiB},
          std::pair{workload::Pattern::kNtoN, 8 * kMiB}}) {
      workload::MpiIoTestParams params;
      params.pattern = pattern;
      params.nranks = 32;
      params.block = block;
      params.total_bytes = 2 * kGiB;
      const taxonomy::OverheadPoint p =
          harness.measure(lanl, workload::make_mpi_io_test(params));
      row.push_back(format_pct(p.bandwidth_overhead));
      if (pattern == workload::Pattern::kNto1Strided && block == 64 * kKiB) {
        if (coupling == 0.5) {
          strided_64k_at_default = p.bandwidth_overhead;
        }
        if (coupling == 0.0) {
          strided_64k_at_zero = p.bandwidth_overhead;
        }
      }
    }
    table.add_row(std::move(row));
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf(
      "\nWithout coupling (row 0.00) the strided 64 KiB overhead is %s —\n"
      "nowhere near the paper's 51.3%%; the default 0.5 gives %s. N-to-N\n"
      "columns are coupling-invariant (exclusive files hold no shared "
      "locks).\n",
      format_pct(strided_64k_at_zero).c_str(),
      format_pct(strided_64k_at_default).c_str());
  return std::abs(strided_64k_at_default - 0.513) < 0.513 * 0.2 &&
                 strided_64k_at_zero < 0.15
             ? 0
             : 1;
}
